//! The request-stream server: segments a line-delimited request stream into
//! batches, fans each batch over the work-stealing pool, and answers **in
//! request order**.
//!
//! Two transports share one loop ([`run_lines`]):
//!
//! * **stdin** — [`serve_stdin`] reads the whole stream to EOF as one
//!   conversation (the `qgdp serve --stdin` mode used by tests and one-shot
//!   scripting);
//! * **TCP** — [`serve_tcp`] accepts connections concurrently (one thread per
//!   connection over the shared engine); each connection is one conversation,
//!   with batching on the client's half-close (`qgdp submit` writes its lines,
//!   shuts down its write half, then reads the responses).
//!
//! Consecutive job lines form one batch; a control line (`stats`, `shutdown`)
//! flushes the batch before executing.  A malformed line answers `ok:false` in
//! its slot without dropping the conversation, and a fault-injected job is
//! contained to its own response — the server survives poisoned requests by
//! the batch engine's isolation contract.
//!
//! When `QGDP_SNAPSHOT` names a file, the server restores the artifact cache
//! from it at startup (if present) and persists the cache back on `shutdown`.

use crate::engine::ServeEngine;
use crate::snapshot;
use crate::wire::{parse_request, render_parse_error, render_response, WireMessage};
use qgdp_metrics::worker_threads;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

/// Server policy knobs (transport-independent).
#[derive(Debug, Clone, Default)]
pub struct ServerOptions {
    /// Snapshot file: restored at startup, written on `shutdown`.
    pub snapshot_path: Option<PathBuf>,
    /// Worker threads per batch; `None` follows `QGDP_THREADS`.
    pub threads: Option<usize>,
}

impl ServerOptions {
    /// Reads the options from the environment (`QGDP_SNAPSHOT`).
    #[must_use]
    pub fn from_env() -> Self {
        ServerOptions {
            snapshot_path: std::env::var_os("QGDP_SNAPSHOT").map(PathBuf::from),
            threads: None,
        }
    }

    fn threads(&self) -> usize {
        self.threads.unwrap_or_else(worker_threads)
    }
}

/// How a conversation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerOutcome {
    /// The request stream ended (EOF / client half-close).
    Eof,
    /// A `shutdown` op was processed; the server should stop accepting.
    Shutdown,
}

/// One pending line of the current batch segment.
enum Pending {
    Job { id: String, index: usize },
    Broken(String),
}

/// Runs one conversation: reads request lines from `reader` until EOF, writes
/// one response line per request to `writer`, in request order.
///
/// # Errors
///
/// Returns the underlying I/O error when reading or writing the transport
/// fails; request-level problems are answered in-band instead.
pub fn run_lines<R: BufRead, W: Write>(
    engine: &ServeEngine,
    reader: R,
    writer: &mut W,
    options: &ServerOptions,
) -> std::io::Result<ServerOutcome> {
    let mut pending: Vec<Pending> = Vec::new();
    let mut jobs = Vec::new();

    let flush_batch =
        |pending: &mut Vec<Pending>, jobs: &mut Vec<_>, writer: &mut W| -> std::io::Result<()> {
            let results = engine.run_batch(jobs, options.threads());
            for line in pending.drain(..) {
                match line {
                    Pending::Job { id, index } => {
                        writeln!(writer, "{}", render_response(&id, &results[index]))?;
                    }
                    Pending::Broken(response) => writeln!(writer, "{response}")?,
                }
            }
            jobs.clear();
            writer.flush()
        };

    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(WireMessage::Job { id, job }) => {
                pending.push(Pending::Job {
                    id,
                    index: jobs.len(),
                });
                jobs.push(*job);
            }
            Ok(WireMessage::Stats) => {
                flush_batch(&mut pending, &mut jobs, writer)?;
                let stats = engine.store_stats();
                writeln!(
                    writer,
                    "{{\"ok\":true,\"op\":\"stats\",\"hits\":{},\"misses\":{},\
                     \"insertions\":{},\"evictions\":{},\"cached\":{}}}",
                    stats.hits,
                    stats.misses,
                    stats.insertions,
                    stats.evictions,
                    engine.cached_artifacts()
                )?;
                writer.flush()?;
            }
            Ok(WireMessage::Shutdown) => {
                flush_batch(&mut pending, &mut jobs, writer)?;
                let persisted = persist_snapshot(engine, options);
                writeln!(
                    writer,
                    "{{\"ok\":true,\"op\":\"shutdown\",\"snapshot_saved\":{persisted}}}"
                )?;
                writer.flush()?;
                return Ok(ServerOutcome::Shutdown);
            }
            Err(e) => pending.push(Pending::Broken(render_parse_error(&e))),
        }
    }
    flush_batch(&mut pending, &mut jobs, writer)?;
    Ok(ServerOutcome::Eof)
}

fn persist_snapshot(engine: &ServeEngine, options: &ServerOptions) -> bool {
    let Some(path) = &options.snapshot_path else {
        return false;
    };
    match snapshot::save(path, &engine.export_snapshot()) {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "qgdp serve: failed to save snapshot {}: {e}",
                path.display()
            );
            false
        }
    }
}

/// Restores the snapshot named by `options`, if the file exists.  Corrupt or
/// incompatible snapshots are reported to stderr and the server starts cold —
/// a damaged cache file must never keep the service down.
pub fn restore_snapshot_if_present(engine: &ServeEngine, options: &ServerOptions) {
    let Some(path) = &options.snapshot_path else {
        return;
    };
    if !path.exists() {
        return;
    }
    match snapshot::load(path).map(|snap| engine.restore_snapshot(&snap)) {
        Ok(Ok(stats)) => eprintln!(
            "qgdp serve: restored {} sessions / {} legalized / {} detailed from {}",
            stats.sessions,
            stats.legalized,
            stats.detailed,
            path.display()
        ),
        Ok(Err(e)) => eprintln!(
            "qgdp serve: snapshot {} rejected ({e}); starting cold",
            path.display()
        ),
        Err(e) => eprintln!(
            "qgdp serve: snapshot {} unreadable ({e}); starting cold",
            path.display()
        ),
    }
}

/// Serves one conversation over stdin/stdout, then exits.
///
/// # Errors
///
/// Returns the underlying I/O error when the standard streams fail.
pub fn serve_stdin(engine: &ServeEngine, options: &ServerOptions) -> std::io::Result<()> {
    restore_snapshot_if_present(engine, options);
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut writer = BufWriter::new(stdout.lock());
    run_lines(engine, stdin.lock(), &mut writer, options)?;
    Ok(())
}

/// Binds `addr` and serves connections concurrently — one thread per
/// connection over the shared engine — until a client sends the `shutdown`
/// op.  Prints one `listening on <addr>` line to stderr once bound (the CI
/// smoke test waits for it).
///
/// Concurrency model: each accepted connection runs [`run_lines`] on its own
/// scoped thread, so a tenant holding a conversation open never blocks another
/// tenant's batch (the PR 8 sequential-accept carry-over).  The engine is
/// already `Sync` — the artifact store is mutex-guarded and batch execution
/// fans over its own worker pool — so conversations interleave safely and warm
/// replays stay byte-identical.  On `shutdown` the handling thread raises a
/// flag and wakes the accept loop with a loopback connection; the scope then
/// joins every in-flight conversation before the function returns, so no
/// accepted request is dropped mid-stream.
///
/// # Errors
///
/// Returns the underlying I/O error when binding or accepting fails; per-
/// connection I/O errors are logged and the accept loop continues.
pub fn serve_tcp<A: ToSocketAddrs>(
    engine: &ServeEngine,
    addr: A,
    options: &ServerOptions,
) -> std::io::Result<()> {
    restore_snapshot_if_present(engine, options);
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    eprintln!("qgdp serve: listening on {local_addr}");
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("qgdp serve: accept failed: {e}");
                    continue;
                }
            };
            let shutdown = &shutdown;
            scope.spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(s) => BufReader::new(s),
                    Err(e) => {
                        eprintln!("qgdp serve: connection setup failed: {e}");
                        return;
                    }
                };
                let mut writer = BufWriter::new(stream);
                match run_lines(engine, reader, &mut writer, options) {
                    Ok(ServerOutcome::Shutdown) => {
                        shutdown.store(true, Ordering::SeqCst);
                        // `incoming()` blocks in accept; a loopback connection
                        // wakes it so the loop can observe the flag and stop.
                        let _ = TcpStream::connect(local_addr);
                    }
                    Ok(ServerOutcome::Eof) => {}
                    Err(e) => eprintln!("qgdp serve: connection error: {e}"),
                }
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ServeEngine;
    use crate::store::StoreConfig;
    use crate::wire::{parse_json, Json};

    fn options() -> ServerOptions {
        ServerOptions {
            snapshot_path: None,
            threads: Some(2),
        }
    }

    fn run(engine: &ServeEngine, input: &str) -> (Vec<String>, ServerOutcome) {
        let mut out = Vec::new();
        let outcome = run_lines(engine, input.as_bytes(), &mut out, &options()).unwrap();
        let text = String::from_utf8(out).unwrap();
        (text.lines().map(str::to_string).collect(), outcome)
    }

    #[test]
    fn responses_come_back_in_request_order_with_ids_echoed() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let input = "\
{\"id\":\"a\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3}\n\
{\"id\":\"b\",\"topology\":\"grid\",\"strategy\":\"tetris\",\"seed\":3}\n";
        let (lines, outcome) = run(&engine, input);
        assert_eq!(outcome, ServerOutcome::Eof);
        assert_eq!(lines.len(), 2);
        for (line, id) in lines.iter().zip(["a", "b"]) {
            let v = parse_json(line).unwrap();
            assert_eq!(v.get("id"), Some(&Json::Str(id.to_string())));
            assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
        }
    }

    #[test]
    fn poisoned_request_answers_in_slot_and_siblings_survive() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let input = "\
{\"id\":\"good1\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3}\n\
{\"id\":\"bad\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3,\"fault\":\"panic\"}\n\
{\"id\":\"good2\",\"topology\":\"grid\",\"strategy\":\"tetris\",\"seed\":3}\n";
        let (lines, _) = run(&engine, input);
        assert_eq!(lines.len(), 3);
        let ok: Vec<bool> = lines
            .iter()
            .map(|l| parse_json(l).unwrap().get("ok") == Some(&Json::Bool(true)))
            .collect();
        assert_eq!(ok, [true, false, true]);
    }

    #[test]
    fn malformed_line_answers_without_dropping_the_stream() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let input = "\
this is not json\n\
{\"id\":\"ok\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3}\n";
        let (lines, _) = run(&engine, input);
        assert_eq!(lines.len(), 2);
        assert_eq!(
            parse_json(&lines[0]).unwrap().get("ok"),
            Some(&Json::Bool(false))
        );
        assert_eq!(
            parse_json(&lines[1]).unwrap().get("ok"),
            Some(&Json::Bool(true))
        );
    }

    #[test]
    fn warm_rerun_of_the_same_stream_is_byte_identical() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let input = "\
{\"id\":\"a\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3}\n\
{\"id\":\"b\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3,\"detail\":true}\n";
        let (cold, _) = run(&engine, input);
        let (warm, _) = run(&engine, input);
        assert_eq!(
            cold, warm,
            "served responses must not depend on cache state"
        );
        assert!(
            engine.store_stats().hits > 0,
            "second run must hit the cache"
        );
    }

    #[test]
    fn stats_and_shutdown_ops_flush_then_answer() {
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let input = "\
{\"id\":\"a\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3}\n\
{\"op\":\"stats\"}\n\
{\"op\":\"shutdown\"}\n\
{\"id\":\"never\",\"topology\":\"grid\",\"strategy\":\"qgdp\"}\n";
        let (lines, outcome) = run(&engine, input);
        assert_eq!(outcome, ServerOutcome::Shutdown);
        assert_eq!(lines.len(), 3, "lines after shutdown are not processed");
        let stats = parse_json(&lines[1]).unwrap();
        assert_eq!(stats.get("op"), Some(&Json::Str("stats".to_string())));
        let bye = parse_json(&lines[2]).unwrap();
        assert_eq!(bye.get("op"), Some(&Json::Str("shutdown".to_string())));
    }

    #[test]
    fn shutdown_snapshot_restores_on_next_start() {
        let dir = std::env::temp_dir().join("qgdp-serve-server-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.qgdpsnap");
        let _ = std::fs::remove_file(&path);
        let opts = ServerOptions {
            snapshot_path: Some(path.clone()),
            threads: Some(2),
        };
        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let input = "\
{\"id\":\"a\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3}\n\
{\"op\":\"shutdown\"}\n";
        let mut out = Vec::new();
        let outcome = run_lines(&engine, input.as_bytes(), &mut out, &opts).unwrap();
        assert_eq!(outcome, ServerOutcome::Shutdown);
        assert!(path.exists(), "shutdown must write the snapshot");

        let fresh = ServeEngine::new(StoreConfig::default(), 64);
        restore_snapshot_if_present(&fresh, &opts);
        assert!(
            fresh.cached_artifacts() > 0,
            "restart must restore the cache"
        );
        // The restored cache serves the same request without recomputing.
        let mut warm_out = Vec::new();
        let job_line = "{\"id\":\"a\",\"topology\":\"grid\",\"strategy\":\"qgdp\",\"seed\":3}\n";
        run_lines(&fresh, job_line.as_bytes(), &mut warm_out, &opts).unwrap();
        let cold_first = String::from_utf8(out).unwrap();
        let warm_first = String::from_utf8(warm_out).unwrap();
        assert_eq!(
            cold_first.lines().next(),
            warm_first.lines().next(),
            "snapshot-restored response must match the original byte for byte"
        );
        assert_eq!(fresh.store_stats().misses, 0);
        let _ = std::fs::remove_file(&path);
    }
}
