//! The hand-rolled binary snapshot codec: persists the artifact cache across
//! process restarts without serde or any external dependency.
//!
//! # File layout
//!
//! ```text
//! +----------+---------+-------------+-----------+-------------+
//! | QGDPSNAP | version | payload_len |  payload  | fnv64(body) |
//! |  8 bytes | u32 LE  |   u64 LE    |  n bytes  |   u64 LE    |
//! +----------+---------+-------------+-----------+-------------+
//! ```
//!
//! Loads are **checksum-rejecting**: a truncated or bit-flipped file fails with
//! a typed [`SnapshotError`] (never a panic), and a version the codec does not
//! speak is refused before any payload byte is touched.
//!
//! # Byte stability
//!
//! [`encode`] is canonical: sessions are sorted by their content-identity bytes,
//! legalized stages by strategy tag, detailed stages by `(strategy, detail
//! config)` encoding, and every `f64` is written as its IEEE-754 bit pattern.
//! Encoding a snapshot, decoding it and encoding the result yields the **same
//! bytes**, regardless of cache insertion or LRU order — the round-trip
//! byte-stability contract of the snapshot test layer.

use qgdp::digest::{strategy_from_tag, strategy_tag};
use qgdp::{DetailedPlacerConfig, FlowConfig, LegalizationStrategy, StableHasher};
use qgdp_geometry::Point;
use qgdp_metrics::CrosstalkConfig;
use qgdp_netlist::NetModel;
use qgdp_placer::{GlobalPlacerConfig, GpStats};
use qgdp_topology::{Topology, TopologyKind};
use std::fmt;
use std::path::Path;

/// The 8-byte magic prefix of every snapshot file.
pub const MAGIC: &[u8; 8] = b"QGDPSNAP";
/// The codec version this build writes and the only one it reads.
pub const VERSION: u32 = 1;

/// Cap on any decoded element count, so a corrupted length prefix cannot ask
/// for an absurd allocation before the real data runs out.
const MAX_COUNT: u64 = 16_000_000;

/// A typed snapshot failure.  Every malformed input maps to one of these —
/// decoding never panics.
#[derive(Debug)]
pub enum SnapshotError {
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header names a version this codec does not speak.
    UnsupportedVersion(u32),
    /// The file ended before the structure it promised.
    Truncated,
    /// The payload checksum does not match the trailer — bit rot or tampering.
    ChecksumMismatch {
        /// Checksum recorded in the file trailer.
        expected: u64,
        /// Checksum of the payload actually read.
        actual: u64,
    },
    /// The payload decoded but described an impossible structure.
    Malformed(String),
    /// An I/O failure while reading or writing the file.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a qGDP snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this codec speaks {VERSION})"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
            SnapshotError::ChecksumMismatch { expected, actual } => write!(
                f,
                "snapshot checksum mismatch (trailer {expected:016x}, payload {actual:016x})"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::Io(e) => write!(f, "snapshot I/O error: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Raw component positions of one placement, decoupled from any netlist handle.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlacementData {
    /// Qubit centres, in id order.
    pub qubits: Vec<Point>,
    /// Wire-block segment centres, in id order.
    pub segments: Vec<Point>,
}

/// One persisted global-placement result.
#[derive(Debug, Clone, PartialEq)]
pub struct GpSnapshot {
    /// Die lower-left corner, width and height.
    pub die: (Point, f64, f64),
    /// The GP positions.
    pub placement: PlacementData,
    /// The placer's quality statistics.
    pub stats: GpStats,
    /// Wall-clock nanoseconds of the original run (restored artifacts report
    /// the original stage cost, not zero).
    pub elapsed_ns: u64,
}

/// One persisted legalization (both stages of one strategy).
#[derive(Debug, Clone, PartialEq)]
pub struct LegalizedSnapshot {
    /// The strategy that produced the layout.
    pub strategy: LegalizationStrategy,
    /// Positions after qubit legalization.
    pub qubit_placement: PlacementData,
    /// Qubit-stage nanoseconds.
    pub qubit_ns: u64,
    /// Positions after wire-block legalization.
    pub cell_placement: PlacementData,
    /// Wire-block-stage nanoseconds.
    pub cell_ns: u64,
}

/// One persisted detailed placement.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedSnapshot {
    /// The strategy of the legalized input layout.
    pub strategy: LegalizationStrategy,
    /// The detailed-placer configuration that produced the refinement.
    pub detail: DetailedPlacerConfig,
    /// The refined positions.
    pub placement: PlacementData,
    /// Number of windows examined.
    pub windows_processed: u64,
    /// Number of windows accepted.
    pub windows_accepted: u64,
    /// Stage nanoseconds.
    pub elapsed_ns: u64,
}

/// Everything persisted for one session identity: the inputs that rebuild the
/// [`qgdp::Session`] plus every cached stage artifact derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    /// The device topology (self-contained; rebuilt on load).
    pub topology: Topology,
    /// The GP-stage-prefix configuration (geometry, net model, GP, crosstalk).
    /// Detail configs travel per [`DetailedSnapshot`]; fault hooks are never
    /// snapshotted (fault-injected configurations are uncacheable).
    pub config: FlowConfig,
    /// The cached global placement, when one was computed.
    pub gp: Option<GpSnapshot>,
    /// Cached legalizations, at most one per strategy.
    pub legalized: Vec<LegalizedSnapshot>,
    /// Cached detailed placements, at most one per `(strategy, detail)` pair.
    pub detailed: Vec<DetailedSnapshot>,
}

/// A decoded (or to-be-encoded) snapshot: the persistent image of the cache.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// One entry per session identity.
    pub sessions: Vec<SessionSnapshot>,
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    push_u64(out, v.to_bits());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn push_points(out: &mut Vec<u8>, points: &[Point]) {
    push_u64(out, points.len() as u64);
    for p in points {
        push_f64(out, p.x);
        push_f64(out, p.y);
    }
}

fn push_placement(out: &mut Vec<u8>, p: &PlacementData) {
    push_points(out, &p.qubits);
    push_points(out, &p.segments);
}

fn kind_tag(kind: TopologyKind) -> u8 {
    match kind {
        TopologyKind::Grid => 0,
        TopologyKind::HeavyHex => 1,
        TopologyKind::Octagon => 2,
        TopologyKind::Xtree => 3,
        _ => 4,
    }
}

fn kind_from_tag(tag: u8) -> Option<TopologyKind> {
    Some(match tag {
        0 => TopologyKind::Grid,
        1 => TopologyKind::HeavyHex,
        2 => TopologyKind::Octagon,
        3 => TopologyKind::Xtree,
        4 => TopologyKind::Custom,
        _ => return None,
    })
}

fn push_topology(out: &mut Vec<u8>, t: &Topology) {
    push_str(out, t.name());
    push_u8(out, kind_tag(t.kind()));
    push_u64(out, t.num_qubits() as u64);
    push_u64(out, t.couplings().len() as u64);
    for &(a, b) in t.couplings() {
        push_u64(out, a as u64);
        push_u64(out, b as u64);
    }
    push_points(out, t.coords());
}

fn push_config(out: &mut Vec<u8>, c: &FlowConfig) {
    let g = &c.geometry;
    push_f64(out, g.qubit_width);
    push_f64(out, g.qubit_height);
    push_f64(out, g.wire_block_size);
    push_f64(out, g.padding_length);
    push_f64(out, g.resonator_wirelength);
    push_f64(out, g.min_qubit_spacing_cells);
    push_u8(
        out,
        match c.net_model {
            NetModel::Chain => 0,
            NetModel::Pseudo => 1,
            NetModel::Clique => 2,
        },
    );
    let gp = &c.gp;
    push_f64(out, gp.utilization);
    push_u64(out, gp.iterations as u64);
    push_f64(out, gp.attraction);
    push_f64(out, gp.anchor);
    push_f64(out, gp.repulsion);
    push_f64(out, gp.damping);
    push_f64(out, gp.jitter);
    push_f64(out, gp.qubit_padding_cells);
    push_u64(out, gp.star_threshold as u64);
    push_u64(out, gp.seed);
    push_f64(out, c.crosstalk.proximity_threshold);
    push_f64(out, c.crosstalk.detuning_threshold_ghz);
}

fn push_detail_config(out: &mut Vec<u8>, d: &DetailedPlacerConfig) {
    push_f64(out, d.window_margin_cells);
    push_u64(out, d.max_windows as u64);
    push_u64(out, d.passes as u64);
    push_f64(out, d.crosstalk.proximity_threshold);
    push_f64(out, d.crosstalk.detuning_threshold_ghz);
    push_u8(out, u8::from(d.fidelity_guided));
}

fn detail_sort_key(d: &DetailedPlacerConfig) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(42);
    push_detail_config(&mut bytes, d);
    bytes
}

fn push_session(out: &mut Vec<u8>, s: &SessionSnapshot) {
    push_topology(out, &s.topology);
    push_config(out, &s.config);
    match &s.gp {
        None => push_u8(out, 0),
        Some(gp) => {
            push_u8(out, 1);
            push_f64(out, gp.die.0.x);
            push_f64(out, gp.die.0.y);
            push_f64(out, gp.die.1);
            push_f64(out, gp.die.2);
            push_placement(out, &gp.placement);
            push_f64(out, gp.stats.hpwl);
            push_u64(out, gp.stats.overlaps as u64);
            push_f64(out, gp.stats.max_density);
            push_u64(out, gp.elapsed_ns);
        }
    }
    let mut legalized: Vec<&LegalizedSnapshot> = s.legalized.iter().collect();
    legalized.sort_by_key(|l| strategy_tag(l.strategy));
    push_u64(out, legalized.len() as u64);
    for l in legalized {
        push_u8(out, strategy_tag(l.strategy));
        push_placement(out, &l.qubit_placement);
        push_u64(out, l.qubit_ns);
        push_placement(out, &l.cell_placement);
        push_u64(out, l.cell_ns);
    }
    let mut detailed: Vec<&DetailedSnapshot> = s.detailed.iter().collect();
    detailed.sort_by_key(|d| (strategy_tag(d.strategy), detail_sort_key(&d.detail)));
    push_u64(out, detailed.len() as u64);
    for d in detailed {
        push_u8(out, strategy_tag(d.strategy));
        push_detail_config(out, &d.detail);
        push_placement(out, &d.placement);
        push_u64(out, d.windows_processed);
        push_u64(out, d.windows_accepted);
        push_u64(out, d.elapsed_ns);
    }
}

/// Encodes `snapshot` into the canonical byte form (header + payload +
/// checksum).  Canonical: the same logical snapshot always encodes to the same
/// bytes, whatever order its vectors arrived in.
#[must_use]
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    // Sort sessions by their own canonical encoding for order independence.
    let mut bodies: Vec<Vec<u8>> = snapshot
        .sessions
        .iter()
        .map(|s| {
            let mut body = Vec::new();
            push_session(&mut body, s);
            body
        })
        .collect();
    bodies.sort();
    let mut payload = Vec::new();
    push_u64(&mut payload, bodies.len() as u64);
    for body in &bodies {
        payload.extend_from_slice(body);
    }

    let mut hasher = StableHasher::new();
    hasher.update(&payload);
    let checksum = hasher.finish();

    let mut out = Vec::with_capacity(payload.len() + 28);
    out.extend_from_slice(MAGIC);
    push_u32(&mut out, VERSION);
    push_u64(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    push_u64(&mut out, checksum);
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn count(&mut self, what: &str) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > MAX_COUNT {
            return Err(SnapshotError::Malformed(format!(
                "{what} count {n} exceeds the sanity cap"
            )));
        }
        Ok(n as usize)
    }

    fn string(&mut self, what: &str) -> Result<String, SnapshotError> {
        let len = self.count(what)?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SnapshotError::Malformed(format!("{what} is not UTF-8")))
    }

    fn points(&mut self, what: &str) -> Result<Vec<Point>, SnapshotError> {
        let n = self.count(what)?;
        let mut out = Vec::with_capacity(n.min(65_536));
        for _ in 0..n {
            let x = self.f64()?;
            let y = self.f64()?;
            out.push(Point::new(x, y));
        }
        Ok(out)
    }

    fn placement(&mut self, what: &str) -> Result<PlacementData, SnapshotError> {
        Ok(PlacementData {
            qubits: self.points(what)?,
            segments: self.points(what)?,
        })
    }

    fn is_done(&self) -> bool {
        self.at == self.bytes.len()
    }
}

fn read_topology(r: &mut Reader<'_>) -> Result<Topology, SnapshotError> {
    let name = r.string("topology name")?;
    let kind = kind_from_tag(r.u8()?)
        .ok_or_else(|| SnapshotError::Malformed("unknown topology kind tag".into()))?;
    let num_qubits = r.count("qubit")?;
    let num_couplings = r.count("coupling")?;
    let mut couplings = Vec::with_capacity(num_couplings.min(65_536));
    for _ in 0..num_couplings {
        let a = r.u64()? as usize;
        let b = r.u64()? as usize;
        if a >= num_qubits || b >= num_qubits || a == b {
            return Err(SnapshotError::Malformed(format!(
                "coupling ({a}, {b}) is invalid for {num_qubits} qubits"
            )));
        }
        couplings.push((a, b));
    }
    // `Topology::new` panics on duplicates; refuse them here instead.
    let mut sorted: Vec<(usize, usize)> = couplings
        .iter()
        .map(|&(a, b)| if a <= b { (a, b) } else { (b, a) })
        .collect();
    sorted.sort_unstable();
    let before = sorted.len();
    sorted.dedup();
    if sorted.len() != before {
        return Err(SnapshotError::Malformed("duplicate couplings".into()));
    }
    let coords = r.points("coordinate")?;
    if coords.len() != num_qubits {
        return Err(SnapshotError::Malformed(format!(
            "{} coordinates for {num_qubits} qubits",
            coords.len()
        )));
    }
    // `Topology::new` synthesises a "{kind}-{n}" display name; restore the
    // recorded one so the round trip is lossless.
    Ok(Topology::new(name.clone(), kind, num_qubits, couplings, coords).with_name(name))
}

fn read_config(r: &mut Reader<'_>) -> Result<FlowConfig, SnapshotError> {
    let geometry = qgdp_netlist::ComponentGeometry {
        qubit_width: r.f64()?,
        qubit_height: r.f64()?,
        wire_block_size: r.f64()?,
        padding_length: r.f64()?,
        resonator_wirelength: r.f64()?,
        min_qubit_spacing_cells: r.f64()?,
    };
    let net_model = match r.u8()? {
        0 => NetModel::Chain,
        1 => NetModel::Pseudo,
        2 => NetModel::Clique,
        tag => {
            return Err(SnapshotError::Malformed(format!(
                "unknown net-model tag {tag}"
            )))
        }
    };
    let gp = GlobalPlacerConfig {
        utilization: r.f64()?,
        iterations: r.count("gp iteration")?,
        attraction: r.f64()?,
        anchor: r.f64()?,
        repulsion: r.f64()?,
        damping: r.f64()?,
        jitter: r.f64()?,
        qubit_padding_cells: r.f64()?,
        star_threshold: r.count("gp star threshold")?,
        seed: r.u64()?,
    };
    let crosstalk = CrosstalkConfig {
        proximity_threshold: r.f64()?,
        detuning_threshold_ghz: r.f64()?,
    };
    Ok(FlowConfig::default()
        .with_geometry(geometry)
        .with_net_model(net_model)
        .with_gp(gp)
        .with_crosstalk(crosstalk))
}

fn read_detail_config(r: &mut Reader<'_>) -> Result<DetailedPlacerConfig, SnapshotError> {
    let window_margin_cells = r.f64()?;
    let max_windows = r.count("detail window")?;
    let passes = r.count("detail pass")?;
    let crosstalk = CrosstalkConfig {
        proximity_threshold: r.f64()?,
        detuning_threshold_ghz: r.f64()?,
    };
    let fidelity_guided = match r.u8()? {
        0 => false,
        1 => true,
        tag => {
            return Err(SnapshotError::Malformed(format!(
                "bad fidelity-guided flag {tag}"
            )))
        }
    };
    Ok(DetailedPlacerConfig {
        window_margin_cells,
        max_windows,
        passes,
        crosstalk,
        fidelity_guided,
    })
}

fn read_strategy(r: &mut Reader<'_>) -> Result<LegalizationStrategy, SnapshotError> {
    let tag = r.u8()?;
    strategy_from_tag(tag)
        .ok_or_else(|| SnapshotError::Malformed(format!("unknown strategy tag {tag}")))
}

fn read_session(r: &mut Reader<'_>) -> Result<SessionSnapshot, SnapshotError> {
    let topology = read_topology(r)?;
    let config = read_config(r)?;
    let gp = match r.u8()? {
        0 => None,
        1 => {
            let ll = Point::new(r.f64()?, r.f64()?);
            let w = r.f64()?;
            let h = r.f64()?;
            let placement = r.placement("gp placement")?;
            let stats = GpStats {
                hpwl: r.f64()?,
                overlaps: r.count("gp overlap")?,
                max_density: r.f64()?,
            };
            let elapsed_ns = r.u64()?;
            Some(GpSnapshot {
                die: (ll, w, h),
                placement,
                stats,
                elapsed_ns,
            })
        }
        tag => {
            return Err(SnapshotError::Malformed(format!(
                "bad gp-presence flag {tag}"
            )))
        }
    };
    let num_legalized = r.count("legalized")?;
    let mut legalized = Vec::with_capacity(num_legalized.min(16));
    for _ in 0..num_legalized {
        legalized.push(LegalizedSnapshot {
            strategy: read_strategy(r)?,
            qubit_placement: r.placement("qubit placement")?,
            qubit_ns: r.u64()?,
            cell_placement: r.placement("cell placement")?,
            cell_ns: r.u64()?,
        });
    }
    let num_detailed = r.count("detailed")?;
    let mut detailed = Vec::with_capacity(num_detailed.min(16));
    for _ in 0..num_detailed {
        detailed.push(DetailedSnapshot {
            strategy: read_strategy(r)?,
            detail: read_detail_config(r)?,
            placement: r.placement("detailed placement")?,
            windows_processed: r.u64()?,
            windows_accepted: r.u64()?,
            elapsed_ns: r.u64()?,
        });
    }
    Ok(SessionSnapshot {
        topology,
        config,
        gp,
        legalized,
        detailed,
    })
}

/// Decodes a snapshot file image.
///
/// # Errors
///
/// Returns the typed [`SnapshotError`] describing exactly what was wrong:
/// bad magic, unsupported version, truncation, checksum mismatch, or a
/// structurally impossible payload.  Never panics on malformed input.
pub fn decode(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
    let mut r = Reader::new(bytes);
    if r.take(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = {
        let b = r.take(4)?;
        u32::from_le_bytes(b.try_into().expect("4-byte slice"))
    };
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let payload_len = r.u64()? as usize;
    let payload = r.take(payload_len)?;
    let expected = r.u64()?;
    if !r.is_done() {
        return Err(SnapshotError::Malformed(
            "trailing bytes after checksum".into(),
        ));
    }
    let mut hasher = StableHasher::new();
    hasher.update(payload);
    let actual = hasher.finish();
    if actual != expected {
        return Err(SnapshotError::ChecksumMismatch { expected, actual });
    }

    let mut r = Reader::new(payload);
    let num_sessions = r.count("session")?;
    let mut sessions = Vec::with_capacity(num_sessions.min(1024));
    for _ in 0..num_sessions {
        sessions.push(read_session(&mut r)?);
    }
    if !r.is_done() {
        return Err(SnapshotError::Malformed("trailing payload bytes".into()));
    }
    Ok(Snapshot { sessions })
}

/// Writes `snapshot` to `path` atomically (temp file + rename).
///
/// # Errors
///
/// Returns [`SnapshotError::Io`] on filesystem failures.
pub fn save(path: &Path, snapshot: &Snapshot) -> Result<(), SnapshotError> {
    let bytes = encode(snapshot);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Reads and decodes the snapshot at `path`.
///
/// # Errors
///
/// Returns a typed [`SnapshotError`] for I/O failures and every malformed-file
/// shape [`decode`] rejects.
pub fn load(path: &Path) -> Result<Snapshot, SnapshotError> {
    let bytes = std::fs::read(path)?;
    decode(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgdp_topology::StandardTopology;

    fn sample() -> Snapshot {
        let topology = StandardTopology::Grid.build();
        let config = FlowConfig::default().with_seed(7);
        let placement = PlacementData {
            qubits: vec![Point::new(1.5, 2.5), Point::new(3.25, -4.0)],
            segments: vec![Point::new(0.125, 9.0)],
        };
        Snapshot {
            sessions: vec![SessionSnapshot {
                topology,
                config,
                gp: Some(GpSnapshot {
                    die: (Point::new(0.0, 0.0), 500.0, 400.0),
                    placement: placement.clone(),
                    stats: GpStats {
                        hpwl: 1234.5,
                        overlaps: 3,
                        max_density: 0.75,
                    },
                    elapsed_ns: 1_000_000,
                }),
                legalized: vec![LegalizedSnapshot {
                    strategy: LegalizationStrategy::Qgdp,
                    qubit_placement: placement.clone(),
                    qubit_ns: 10,
                    cell_placement: placement.clone(),
                    cell_ns: 20,
                }],
                detailed: vec![DetailedSnapshot {
                    strategy: LegalizationStrategy::Qgdp,
                    detail: DetailedPlacerConfig::new(),
                    placement,
                    windows_processed: 5,
                    windows_accepted: 2,
                    elapsed_ns: 30,
                }],
            }],
        }
    }

    #[test]
    fn round_trip_is_byte_stable() {
        let snapshot = sample();
        let bytes = encode(&snapshot);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, snapshot);
        assert_eq!(encode(&decoded), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn session_order_does_not_change_the_bytes() {
        let mut two = sample();
        let mut other = sample().sessions.remove(0);
        other.config = other.config.with_seed(99);
        two.sessions.push(other);
        let forward = encode(&two);
        two.sessions.reverse();
        assert_eq!(encode(&two), forward, "canonical encoding is order-free");
    }

    #[test]
    fn truncation_is_a_typed_error_at_every_length() {
        let bytes = encode(&sample());
        for len in 0..bytes.len() {
            match decode(&bytes[..len]) {
                Err(
                    SnapshotError::Truncated
                    | SnapshotError::BadMagic
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::Malformed(_),
                ) => {}
                other => panic!("truncation at {len} produced {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = encode(&sample());
        // Flipping any payload or trailer bit must be caught by the checksum (or
        // an earlier structural check); header flips trip magic/version/length.
        for byte in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 0x10;
            assert!(
                decode(&corrupt).is_err(),
                "flip at byte {byte} went undetected"
            );
        }
    }

    #[test]
    fn version_mismatch_is_refused() {
        let mut bytes = encode(&sample());
        bytes[8] = 0xFE; // version LE byte 0
        match decode(&bytes) {
            Err(SnapshotError::UnsupportedVersion(v)) => assert_eq!(v, 0x0000_00FE),
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_is_refused() {
        let mut bytes = encode(&sample());
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let bytes = encode(&Snapshot::default());
        assert_eq!(decode(&bytes).unwrap(), Snapshot::default());
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let snapshot = sample();
        let dir = std::env::temp_dir().join("qgdp-serve-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.qgdpsnap");
        save(&path, &snapshot).unwrap();
        assert_eq!(load(&path).unwrap(), snapshot);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn io_errors_are_typed() {
        let missing = Path::new("/nonexistent/qgdp/cache.qgdpsnap");
        assert!(matches!(load(missing), Err(SnapshotError::Io(_))));
    }
}
