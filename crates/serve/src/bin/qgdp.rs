//! The `qgdp` command: a placement server (`qgdp serve`) and its line-stream
//! client (`qgdp submit`).
//!
//! ```text
//! qgdp serve --addr 127.0.0.1:7421     # TCP server, sequential connections
//! qgdp serve --stdin                   # one conversation over stdin/stdout
//! qgdp submit --addr 127.0.0.1:7421 requests.jsonl
//! qgdp submit --addr 127.0.0.1:7421 < requests.jsonl
//! ```
//!
//! Environment: `QGDP_THREADS` (workers per batch), `QGDP_CACHE_ENTRIES` /
//! `QGDP_CACHE_BYTES` (artifact-store budgets), `QGDP_QUEUE_DEPTH` (batch
//! admission bound), `QGDP_SNAPSHOT` (cache snapshot file, restored at startup
//! and written on the `shutdown` op).

use qgdp_serve::engine::ServeEngine;
use qgdp_serve::server::{serve_stdin, serve_tcp, ServerOptions};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::process::ExitCode;

const USAGE: &str = "\
usage:
  qgdp serve [--addr HOST:PORT | --stdin]
  qgdp submit --addr HOST:PORT [FILE]

qgdp serve answers line-delimited JSON placement requests (see the qgdp-serve
crate docs for the wire format). qgdp submit streams FILE (or stdin) to a
running server and prints the response lines in request order.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("--help" | "-h" | "help") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let engine = ServeEngine::from_env();
    let options = ServerOptions::from_env();
    let use_stdin = args.iter().any(|a| a == "--stdin");
    let result = if use_stdin {
        serve_stdin(&engine, &options)
    } else {
        let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7421");
        serve_tcp(&engine, addr, &options)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qgdp serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_submit(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("qgdp submit: --addr HOST:PORT is required\n{USAGE}");
        return ExitCode::FAILURE;
    };
    let mut file = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--addr" {
            i += 2;
        } else if args[i].starts_with("--") {
            i += 1;
        } else {
            file = Some(args[i].clone());
            i += 1;
        }
    }
    match submit(addr, file.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("qgdp submit: {e}");
            ExitCode::FAILURE
        }
    }
}

fn submit(addr: &str, file: Option<&str>) -> std::io::Result<()> {
    let requests: Box<dyn Read> = match file {
        Some(path) => Box::new(std::fs::File::open(path)?),
        None => Box::new(std::io::stdin()),
    };
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    for line in BufReader::new(requests).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{line}")?;
    }
    writer.flush()?;
    // Half-close tells the server the batch is complete; responses follow.
    stream.shutdown(Shutdown::Write)?;
    let stdout = std::io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for response in BufReader::new(stream).lines() {
        writeln!(out, "{}", response?)?;
    }
    out.flush()
}
