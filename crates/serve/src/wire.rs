//! The line-delimited JSON wire format of `qgdp serve` / `qgdp submit`.
//!
//! One request per line; one response line per request, **in request order**.
//! The parser and renderer are hand-rolled (no serde in this build
//! environment) and deliberately tiny: flat objects, string/number/bool
//! values, the standard escape set.
//!
//! # Requests
//!
//! ```json
//! {"id": "r1", "topology": "grid", "strategy": "qgdp", "seed": 7}
//! {"id": "r2", "topology": "falcon", "strategy": "tetris", "seed": 7, "detail": true}
//! {"id": "r3", "topology": "eagle", "strategy": "qgdp", "detail": {"passes": 2}}
//! {"id": "r4", "topology": "grid", "strategy": "qgdp", "fault": "panic"}
//! {"op": "stats"}
//! {"op": "shutdown"}
//! ```
//!
//! * `topology` — a standard device name (`grid`, `xtree`, `falcon`, `eagle`,
//!   `aspen-11`, `aspen-m`), case-insensitive.
//! * `strategy` — `qgdp`, `qabacus`, `qtetris`, `abacus` or `tetris`.
//! * `seed` — GP seed (optional, default 0).
//! * `detail` — omitted/`false` stops after legalization; `true` runs detailed
//!   placement with defaults; an object overrides `window_margin_cells`,
//!   `max_windows`, `passes`, `fidelity_guided`.
//! * `fault` — `"panic"` / `"fail"` arms the deterministic fault hooks for the
//!   request's strategy (testing; such requests bypass the artifact cache).
//!
//! # Responses
//!
//! Responses are **fully deterministic** — metrics and the placement
//! fingerprint, never timings — so a warm-cache rerun of a request stream is
//! byte-for-byte identical to the cold run (the CI smoke test diffs exactly
//! that).

use crate::engine::{JobRequest, ServeError};
use qgdp::{
    placement_fingerprint, DetailedPlacerConfig, FaultInjection, FlowArtifact, FlowConfig,
    LegalizationStrategy,
};
use qgdp_topology::{StandardTopology, Topology};
use std::fmt;
use std::sync::Arc;

/// A wire-level parse failure (the offending line gets an error response; the
/// stream keeps going).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for WireError {}

fn err(msg: impl Into<String>) -> WireError {
    WireError(msg.into())
}

// ---------------------------------------------------------------------------
// Minimal JSON value model + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the wire format uses).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> JsonParser<'a> {
    fn new(text: &'a str) -> Self {
        JsonParser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), WireError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(err(format!("expected '{}' at byte {}", b as char, self.at)))
        }
    }

    fn value(&mut self) -> Result<Json, WireError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(err(format!(
                "unexpected '{}' at byte {}",
                c as char, self.at
            ))),
            None => Err(err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(err(format!("bad literal at byte {}", self.at)))
        }
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.at;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.at += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| err(format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or_else(|| err("unterminated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.at..self.at + 4)
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| err("bad \\u escape"))?;
                            self.at += 4;
                            // Surrogate pairs are rejected rather than decoded:
                            // nothing in the wire vocabulary needs them.
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err("\\u escape is not a scalar value"))?,
                            );
                        }
                        other => return Err(err(format!("unknown escape '\\{}'", other as char))),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences included).
                    let rest = std::str::from_utf8(&self.bytes[self.at..])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| err("empty string tail"))?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(err(format!("expected ',' or '}}' at byte {}", self.at))),
            }
        }
    }

    fn array(&mut self) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(err(format!("expected ',' or ']' at byte {}", self.at))),
            }
        }
    }
}

/// Parses one JSON value, requiring the whole input to be consumed.
///
/// # Errors
///
/// Returns a [`WireError`] naming the first offending byte.
pub fn parse_json(text: &str) -> Result<Json, WireError> {
    let mut p = JsonParser::new(text);
    let value = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(err(format!("trailing input at byte {}", p.at)));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Request decoding
// ---------------------------------------------------------------------------

/// One decoded request line.
#[derive(Debug, Clone)]
pub enum WireMessage {
    /// A placement job with its caller-chosen id.
    Job {
        /// The id echoed back on the response line.
        id: String,
        /// The decoded job (boxed — a job dwarfs the dataless control ops).
        job: Box<JobRequest>,
    },
    /// `{"op": "stats"}` — report cache counters.
    Stats,
    /// `{"op": "shutdown"}` — snapshot (if configured) and stop the server.
    Shutdown,
}

fn topology_by_name(name: &str) -> Result<Topology, WireError> {
    let lowered = name.to_ascii_lowercase();
    for standard in StandardTopology::all() {
        if standard.name().to_ascii_lowercase() == lowered {
            return Ok(standard.build());
        }
    }
    Err(err(format!(
        "unknown topology '{name}' (expected one of grid, xtree, falcon, eagle, aspen-11, aspen-m)"
    )))
}

/// Parses a strategy name as used on the wire (lowercase).
///
/// # Errors
///
/// Returns a [`WireError`] for anything but the five paper strategies.
pub fn strategy_by_name(name: &str) -> Result<LegalizationStrategy, WireError> {
    match name.to_ascii_lowercase().as_str() {
        "qgdp" => Ok(LegalizationStrategy::Qgdp),
        "qabacus" => Ok(LegalizationStrategy::QAbacus),
        "qtetris" => Ok(LegalizationStrategy::QTetris),
        "abacus" => Ok(LegalizationStrategy::Abacus),
        "tetris" => Ok(LegalizationStrategy::Tetris),
        other => Err(err(format!("unknown strategy '{other}'"))),
    }
}

fn parse_u64(value: &Json, what: &str) -> Result<u64, WireError> {
    match value {
        Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 1.8e19 => Ok(*n as u64),
        _ => Err(err(format!("{what} must be a non-negative integer"))),
    }
}

fn parse_detail(value: &Json) -> Result<Option<DetailedPlacerConfig>, WireError> {
    match value {
        Json::Null | Json::Bool(false) => Ok(None),
        Json::Bool(true) => Ok(Some(DetailedPlacerConfig::new())),
        Json::Obj(_) => {
            let mut config = DetailedPlacerConfig::new();
            if let Some(v) = value.get("window_margin_cells") {
                match v {
                    Json::Num(n) => config.window_margin_cells = *n,
                    _ => return Err(err("window_margin_cells must be a number")),
                }
            }
            if let Some(v) = value.get("max_windows") {
                config.max_windows = parse_u64(v, "max_windows")? as usize;
            }
            if let Some(v) = value.get("passes") {
                config.passes = parse_u64(v, "passes")? as usize;
            }
            if let Some(v) = value.get("fidelity_guided") {
                match v {
                    Json::Bool(b) => config.fidelity_guided = *b,
                    _ => return Err(err("fidelity_guided must be a boolean")),
                }
            }
            Ok(Some(config))
        }
        _ => Err(err("detail must be a boolean or an object")),
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first problem with the line; the
/// caller turns it into an `ok:false` response without dropping the stream.
pub fn parse_request(line: &str) -> Result<WireMessage, WireError> {
    let value = parse_json(line)?;
    if let Some(op) = value.get("op") {
        return match op {
            Json::Str(s) if s == "stats" => Ok(WireMessage::Stats),
            Json::Str(s) if s == "shutdown" => Ok(WireMessage::Shutdown),
            Json::Str(s) => Err(err(format!("unknown op '{s}'"))),
            _ => Err(err("op must be a string")),
        };
    }
    let id = match value.get("id") {
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(err("id must be a string")),
        None => return Err(err("request is missing 'id'")),
    };
    let topology = match value.get("topology") {
        Some(Json::Str(s)) => topology_by_name(s)?,
        _ => return Err(err("request is missing string 'topology'")),
    };
    let strategy = match value.get("strategy") {
        Some(Json::Str(s)) => strategy_by_name(s)?,
        _ => return Err(err("request is missing string 'strategy'")),
    };
    let seed = match value.get("seed") {
        Some(v) => parse_u64(v, "seed")?,
        None => 0,
    };
    let detail = match value.get("detail") {
        Some(v) => parse_detail(v)?,
        None => None,
    };
    let mut config = FlowConfig::default().with_seed(seed);
    if let Some(fault) = value.get("fault") {
        config = config.with_fault_injection(match fault {
            Json::Str(s) if s == "panic" => FaultInjection {
                panic_in_legalization: Some(strategy),
                ..FaultInjection::default()
            },
            Json::Str(s) if s == "fail" => FaultInjection {
                fail_legalization: Some(strategy),
                ..FaultInjection::default()
            },
            Json::Null => FaultInjection::default(),
            _ => return Err(err("fault must be \"panic\" or \"fail\"")),
        });
    }
    Ok(WireMessage::Job {
        id,
        job: Box::new(JobRequest {
            topology: Arc::new(topology),
            config,
            strategy,
            detail,
        }),
    })
}

// ---------------------------------------------------------------------------
// Response rendering
// ---------------------------------------------------------------------------

/// Escapes a string for embedding in a JSON response line.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn strategy_name(strategy: LegalizationStrategy) -> &'static str {
    match strategy {
        LegalizationStrategy::Qgdp => "qgdp",
        LegalizationStrategy::QAbacus => "qabacus",
        LegalizationStrategy::QTetris => "qtetris",
        LegalizationStrategy::Abacus => "abacus",
        LegalizationStrategy::Tetris => "tetris",
    }
}

/// Renders the response line for one job outcome.
///
/// Success lines carry the layout metrics and the 64-bit placement
/// fingerprint; they are a pure function of the artifact, so reruns (warm or
/// cold) produce byte-identical lines.
#[must_use]
pub fn render_response(id: &str, outcome: &Result<FlowArtifact, ServeError>) -> String {
    match outcome {
        Ok(artifact) => {
            let (stage, placement, report) = match artifact {
                FlowArtifact::Legalized(cell) => ("legalized", cell.placement(), cell.report()),
                FlowArtifact::Detailed(dp) => ("detailed", dp.placement(), dp.report()),
            };
            format!(
                "{{\"id\":\"{}\",\"ok\":true,\"strategy\":\"{}\",\"stage\":\"{}\",\
                 \"fingerprint\":\"{:016x}\",\"num_cells\":{},\"crossings\":{},\
                 \"violations\":{},\"hotspot_qubits\":{},\"hotspot_proportion_percent\":{}}}",
                escape_json(id),
                strategy_name(artifact.strategy()),
                stage,
                placement_fingerprint(placement),
                report.num_cells,
                report.crossings,
                report.violations,
                report.hotspot_qubits,
                report.hotspot_proportion_percent,
            )
        }
        Err(e) => format!(
            "{{\"id\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
            escape_json(id),
            escape_json(&e.to_string())
        ),
    }
}

/// Renders the error response for a line that failed to parse.
#[must_use]
pub fn render_parse_error(e: &WireError) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"{}\"}}",
        escape_json(&format!("bad request: {e}"))
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_job_line() {
        let msg = parse_request(
            r#"{"id": "r1", "topology": "Falcon", "strategy": "qtetris", "seed": 9, "detail": {"passes": 2}}"#,
        )
        .unwrap();
        let WireMessage::Job { id, job } = msg else {
            panic!("expected a job");
        };
        assert_eq!(id, "r1");
        assert_eq!(job.topology.name(), "Falcon");
        assert_eq!(job.strategy, LegalizationStrategy::QTetris);
        assert_eq!(job.config.gp.seed, 9);
        assert_eq!(job.detail.unwrap().passes, 2);
    }

    #[test]
    fn detail_true_means_default_config() {
        let msg = parse_request(r#"{"id":"x","topology":"grid","strategy":"qgdp","detail":true}"#)
            .unwrap();
        let WireMessage::Job { job, .. } = msg else {
            panic!("expected a job");
        };
        assert_eq!(job.detail, Some(DetailedPlacerConfig::new()));
    }

    #[test]
    fn fault_hooks_make_the_config_uncacheable() {
        let msg =
            parse_request(r#"{"id":"bad","topology":"grid","strategy":"qgdp","fault":"panic"}"#)
                .unwrap();
        let WireMessage::Job { job, .. } = msg else {
            panic!("expected a job");
        };
        assert!(!job.config.is_cacheable());
    }

    #[test]
    fn ops_and_errors() {
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#).unwrap(),
            WireMessage::Stats
        ));
        assert!(matches!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            WireMessage::Shutdown
        ));
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"id":"a","topology":"moon","strategy":"qgdp"}"#).is_err());
        assert!(parse_request(r#"{"id":"a","topology":"grid","strategy":"magic"}"#).is_err());
        assert!(parse_request(r#"{"topology":"grid","strategy":"qgdp"}"#).is_err());
        assert!(parse_request(r#"{"id":"a","topology":"grid","strategy":"qgdp"} extra"#).is_err());
    }

    #[test]
    fn json_parser_handles_escapes_and_nesting() {
        let v = parse_json(r#"{"a": "q\"\\\nA", "b": [1, -2.5e1, true, null]}"#).unwrap();
        assert_eq!(v.get("a"), Some(&Json::Str("q\"\\\nA".to_string())));
        assert_eq!(
            v.get("b"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-25.0),
                Json::Bool(true),
                Json::Null
            ]))
        );
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let line = format!("{{\"s\":\"{}\"}}", escape_json(nasty));
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str(nasty.to_string())));
    }

    #[test]
    fn error_responses_are_well_formed_json() {
        let outcome: Result<FlowArtifact, ServeError> =
            Err(ServeError::Worker("boom \"quoted\"".into()));
        let line = render_response("r\"1", &outcome);
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(v.get("id"), Some(&Json::Str("r\"1".to_string())));
    }
}
