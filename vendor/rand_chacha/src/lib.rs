//! Offline API-subset shim for the `rand_chacha` crate (mirrors `rand_chacha` 0.3).
//!
//! Provides [`ChaCha8Rng`]: a genuine ChaCha8 keystream generator implementing the
//! shim `rand` crate's `RngCore`/`SeedableRng`. Streams are deterministic per seed
//! but not bit-identical to upstream (`seed_from_u64` uses a different expander);
//! see `vendor/README.md`.

#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input state (constants, key, counter, nonce).
    state: [u32; 16],
    /// The current output block.
    block: [u32; 16],
    /// Next word to serve from `block`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (&w, &s)) in self
            .block
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(s);
        }
        // 64-bit block counter in words 12/13 (original ChaCha layout).
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (word, bytes) in state[4..12].iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(bytes.try_into().expect("4-byte chunk"));
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn counter_advances_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Pull more than one 16-word block and check the stream does not cycle.
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 1000 words * 32 bits: expect ~16000 set bits; allow a wide margin.
        assert!((14000..18000).contains(&ones), "ones = {ones}");
    }
}
