//! Offline API-subset shim for the `criterion` benchmark harness (mirrors the
//! `criterion` 0.5 surface the qGDP benches use).
//!
//! Benchmarks compile and run: each benchmark executes a short warm-up followed by
//! `sample_size` timed samples and prints mean/min/max wall-clock times. There is no
//! statistical analysis, plotting or `target/criterion` persistence. See
//! `vendor/README.md`.

#![deny(missing_docs)]

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Identifies one benchmark inside a group: a function name, a parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered as `name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running one warm-up call plus `sample_size` timed samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{label:<60} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({n} samples)",
        n = samples.len()
    );
}

/// A group of related benchmarks sharing a name prefix and a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id` over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id), &bencher.samples);
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, name), &bencher.samples);
        self
    }

    /// Finishes the group (no-op beyond matching the upstream API).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(10),
            sample_size: 10,
        };
        f(&mut bencher);
        report(name, &bencher.samples);
        self
    }
}

/// Declares a group of benchmark functions, mirroring upstream `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` function, mirroring upstream `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_with_input(BenchmarkId::new("f", 1), &7u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_renders_both_forms() {
        assert_eq!(
            BenchmarkId::new("quantum", "grid").to_string(),
            "quantum/grid"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
