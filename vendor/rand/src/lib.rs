//! Offline API-subset shim for the `rand` crate (mirrors `rand` 0.8).
//!
//! Implements exactly the surface the qGDP workspace uses: [`RngCore`],
//! [`SeedableRng`], [`Rng::gen_range`] over primitive ranges, and
//! [`seq::SliceRandom`]. See `vendor/README.md` for the rationale.

#![deny(missing_docs)]

use core::ops::Range;

/// The core of a random number generator: a source of random `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be seeded deterministically.
pub trait SeedableRng: Sized {
    /// The seed type, typically a byte array.
    type Seed: AsMut<[u8]> + Default;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64, used to expand `u64` seeds into full seed arrays.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A range that values can be uniformly sampled from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 random mantissa bits mapped to [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Unbiased sampling by rejection on the top-most partial block.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32);

/// User-facing random sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing from slices.

    use super::{RngCore, SampleRange};

    /// Extension trait providing random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..i + 1).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = rng.gen_range(0..17);
            assert!(n < 17);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Counter(3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42].choose(&mut rng), Some(&42));
    }
}
