//! Offline API-subset shim for the `proptest` crate (mirrors the `proptest` 1.x
//! surface the qGDP workspace uses).
//!
//! Supports the [`proptest!`] macro (with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header), range and tuple
//! strategies, [`collection::vec`] / [`collection::hash_set`], and the
//! [`prop_assert!`] / [`prop_assert_eq!`] assertion macros. Case generation is
//! deterministic per test name (FNV-seeded). Failing cases report their inputs but
//! are **not** shrunk. See `vendor/README.md`.

#![deny(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A strategy produces random values of an output type.
    ///
    /// Unlike upstream proptest there is no value tree / shrinking: a strategy is
    /// just a deterministic-per-rng generator.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: core::fmt::Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.gen_f64(self.start, self.end)
        }
    }

    macro_rules! impl_strategy_uint_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_u64(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }

    impl_strategy_uint_range!(usize, u64, u32, u8);

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + core::fmt::Debug>(pub T);

    impl<T: Clone + core::fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    //! Strategies for collections with random sizes.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;
    use std::collections::HashSet;
    use std::hash::Hash;

    /// Strategy for `Vec<T>` with a size drawn from a range. Created by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy generating vectors whose elements come from `element`
    /// and whose length is drawn uniformly from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_u64(self.size.start as u64, self.size.end as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<T>` with a size drawn from a range. Created by
    /// [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Creates a strategy generating hash sets whose elements come from `element`
    /// and whose size is *at most* the upper end of `size` (duplicates collapse,
    /// mirroring upstream's behaviour of retrying only a bounded number of times).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash + core::fmt::Debug,
    {
        type Value = HashSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = rng.gen_u64(self.size.start as u64, self.size.end as u64) as usize;
            let mut out = HashSet::with_capacity(target);
            // Bounded retries so strategies whose domain is smaller than the
            // requested size still terminate.
            let mut attempts = 0;
            while out.len() < target && attempts < target.saturating_mul(16) + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    //! The per-test runner: configuration, RNG and failure plumbing.

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` random cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream proptest's default.
            ProptestConfig { cases: 256 }
        }
    }

    /// A property-level failure (what `prop_assert!` produces).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// The deterministic RNG driving case generation (xorshift-style, FNV-seeded
    /// from the test name so every property gets an independent stream).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates the RNG for the named test.
        #[must_use]
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the test name; deterministic across runs and platforms.
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for byte in name.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(hash | 1)
        }

        fn next(&mut self) -> u64 {
            // SplitMix64.
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[lo, hi)`.
        pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
            let unit = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
            lo + unit * (hi - lo)
        }

        /// Uniform `u64` in `[lo, hi)`; returns `lo` for empty ranges.
        pub fn gen_u64(&mut self, lo: u64, hi: u64) -> u64 {
            if hi <= lo {
                return lo;
            }
            lo + self.next() % (hi - lo)
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Mirrors upstream `proptest!`: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn name(arg in strategy, ..)
/// { body }` items. Each property runs `cases` deterministic random cases; a failing
/// case panics with the property's inputs rendered via `Debug`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands each property item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            #[allow(unused_imports)]
            use $crate::strategy::Strategy as _;
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = (&$strategy).generate(&mut rng);)+
                let inputs = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let case_fn = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(err) = case_fn() {
                    panic!(
                        "proptest property {} failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        err,
                        inputs
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the current case (with the
/// generated inputs reported) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts two values are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in -5.0..5.0f64, n in 0usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!(n < 10);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec((0.0..1.0f64, 0usize..4), 2..6),
            s in crate::collection::hash_set(0usize..100, 0..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(s.len() < 10);
            for &(f, u) in &v {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!(u < 4);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..1_000) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("alpha");
        let mut b = TestRng::for_test("alpha");
        let mut c = TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.gen_u64(0, 1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_u64(0, 1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_u64(0, 1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(x in 0usize..3) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
