//! Convergence suite for the incremental metrics engine.
//!
//! The report stack ships three optimized paths next to their from-scratch
//! references: the [`SegmentGrid`]-indexed crossing detector vs the brute-force
//! route-pair walk, scan-assembled reports/evaluators vs a fresh layout walk per
//! consumer, and [`ReportDelta`] incremental updates vs a full
//! [`LayoutReport::evaluate`] after every move.  Each pair must be **bit-identical**
//! on every layout: these tests drive seeded and property-generated move sequences
//! over legalized layouts of the paper topologies (plus random devices) and compare
//! after every single move, so any drift is caught at the move that introduced it.
//!
//! [`SegmentGrid`]: qgdp::geometry::SegmentGrid
//! [`ReportDelta`]: qgdp::metrics::ReportDelta
//! [`LayoutReport::evaluate`]: qgdp::metrics::LayoutReport::evaluate

use proptest::prelude::*;
use qgdp::metrics::{
    crossing_pairs, crossing_pairs_reference, CrosstalkConfig, FidelityEvaluator, LayoutReport,
    LayoutScan, NoiseModel, ReportDelta,
};
use qgdp::prelude::*;
use qgdp_netlist::ComponentId;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const PAPER_PANEL: [StandardTopology; 3] = [
    StandardTopology::Grid,
    StandardTopology::Falcon,
    StandardTopology::Eagle,
];

/// The legalized qGDP layout of one topology plus the crosstalk config it was
/// produced under — the layout every convergence check perturbs.
fn legalized_case(topology: StandardTopology) -> (Session, Placement, CrosstalkConfig) {
    let config = FlowConfig::default();
    let session = Session::new(&topology.build(), config).expect("session builds");
    let cell = session
        .global_place()
        .legalize(LegalizationStrategy::Qgdp)
        .expect("qGDP legalization succeeds on the paper topologies");
    let placement = cell.placement().clone();
    (session, placement, config.crosstalk)
}

/// Asserts the incremental report is bit-identical to a from-scratch evaluation of
/// the same placement (struct equality plus explicit bit checks on the f64 fields).
fn assert_delta_matches_fresh(
    delta: &ReportDelta,
    netlist: &QuantumNetlist,
    placement: &Placement,
    config: &CrosstalkConfig,
    context: &str,
) {
    let incremental = delta.report();
    let fresh = LayoutReport::evaluate(netlist, placement, config);
    assert_eq!(incremental, fresh, "{context}: delta report diverged");
    assert_eq!(
        incremental.hotspot_proportion_percent.to_bits(),
        fresh.hotspot_proportion_percent.to_bits(),
        "{context}: P_h must be bit-identical"
    );
    assert_eq!(
        delta.hpwl().to_bits(),
        qgdp::placer::hpwl(netlist, placement).to_bits(),
        "{context}: HPWL must be bit-identical"
    );
}

/// Seeded random walks over the legalized paper layouts: segment *and* qubit moves,
/// checked against a full rebuild after every single application, then walked back
/// to the starting placement (the delta must converge to the initial report).
#[test]
fn delta_reports_converge_on_seeded_move_sequences() {
    for topology in PAPER_PANEL {
        let (session, placement, config) = legalized_case(topology);
        let netlist = session.netlist();
        let initial = LayoutReport::evaluate(netlist, &placement, &config);

        let ids: Vec<ComponentId> = netlist.component_ids().collect();
        let die = session.global_place().die();
        let mut rng = ChaCha8Rng::seed_from_u64(0xDE17A ^ topology.name().len() as u64);
        let mut delta = ReportDelta::new(netlist, &placement, &config);
        let mut scratch = placement.clone();
        let mut trail: Vec<(ComponentId, Point)> = Vec::new();

        for step in 0..48 {
            let id = ids[rng.gen_range(0..ids.len())];
            let to = Point::new(
                rng.gen_range(die.left()..die.right()),
                rng.gen_range(die.bottom()..die.top()),
            );
            trail.push((id, scratch.component(id)));
            delta.apply_move(id, to);
            scratch.set_component(id, to);
            assert_delta_matches_fresh(
                &delta,
                netlist,
                &scratch,
                &config,
                &format!("{topology} step {step}"),
            );
        }

        // Walk the trail back: the delta must converge to the starting report.
        for (id, from) in trail.into_iter().rev() {
            delta.apply_move(id, from);
            scratch.set_component(id, from);
        }
        assert_eq!(
            delta.report(),
            initial,
            "{topology}: delta must converge back to the initial report"
        );
    }
}

/// The scan-cache equivalence golden: a report and a fidelity evaluator assembled
/// from one shared [`LayoutScan`] match their from-scratch constructors bit for bit,
/// and the indexed crossing detector matches the brute-force reference.
#[test]
fn scan_cached_paths_match_fresh_evaluation() {
    for topology in PAPER_PANEL {
        let (session, placement, config) = legalized_case(topology);
        let netlist = session.netlist();

        assert_eq!(
            crossing_pairs(netlist, &placement),
            crossing_pairs_reference(netlist, &placement),
            "{topology}: indexed crossing detector diverged from the reference"
        );

        let scan = LayoutScan::scan(netlist, &placement, &config);
        let cached = LayoutReport::from_scan(netlist, &scan);
        let fresh = LayoutReport::evaluate(netlist, &placement, &config);
        assert_eq!(cached, fresh, "{topology}: scan-assembled report diverged");
        assert_eq!(
            cached.hotspot_proportion_percent.to_bits(),
            fresh.hotspot_proportion_percent.to_bits(),
            "{topology}: P_h must be bit-identical"
        );

        let noise = NoiseModel::default();
        let from_scan = FidelityEvaluator::from_scan(netlist, noise, &scan);
        let from_scratch = FidelityEvaluator::new(netlist, &placement, noise, &config);
        assert_eq!(
            from_scan.violations(),
            from_scratch.violations(),
            "{topology}: evaluator violations diverged"
        );
        assert_eq!(
            from_scan.crossings(),
            from_scratch.crossings(),
            "{topology}: evaluator crossings diverged"
        );
    }
}

/// A random connected device: binary-tree spanning tree plus bounded extra chords
/// (the same generator shape `random_netlist_properties` uses).
fn random_device(n: usize, extra_edges: &[(usize, usize)]) -> Topology {
    let mut couplings: Vec<(usize, usize)> = (1..n).map(|i| (i, i / 2)).collect();
    for &(a, b) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a != b
            && !couplings.contains(&(a.min(b), a.max(b)))
            && !couplings.contains(&(a, b))
            && !couplings.contains(&(b, a))
        {
            couplings.push((a.min(b), a.max(b)));
        }
    }
    let coords = (0..n)
        .map(|i| qgdp::geometry::Point::new((i % 4) as f64, (i / 4) as f64))
        .collect();
    Topology::new(
        format!("random-{n}"),
        qgdp::topology::TopologyKind::Custom,
        n,
        couplings,
        coords,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random devices with random placements, a delta driven through a random
    /// move sequence stays bit-identical to the from-scratch report at every step.
    #[test]
    fn prop_delta_matches_full_rebuild(
        n in 3usize..8,
        extra in proptest::collection::vec((0usize..8, 0usize..8), 0..4),
        positions in proptest::collection::vec((0.05f64..0.95, 0.05f64..0.95), 8..40),
        moves in proptest::collection::vec((0usize..64, 0.05f64..0.95, 0.05f64..0.95), 1..24),
    ) {
        let device = random_device(n, &extra);
        let netlist = device
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .expect("netlist builds");
        let die = netlist.suggested_die(0.35);
        let mut placement = Placement::new(&netlist);
        for (k, id) in netlist.component_ids().enumerate() {
            let (fx, fy) = positions[k % positions.len()];
            placement.set_component(
                id,
                Point::new(die.left() + fx * die.width(), die.bottom() + fy * die.height()),
            );
        }

        let config = FlowConfig::default().crosstalk;
        let ids: Vec<ComponentId> = netlist.component_ids().collect();
        let mut delta = ReportDelta::new(&netlist, &placement, &config);
        let mut scratch = placement.clone();
        for &(pick, fx, fy) in &moves {
            let id = ids[pick % ids.len()];
            let to = Point::new(die.left() + fx * die.width(), die.bottom() + fy * die.height());
            delta.apply_move(id, to);
            scratch.set_component(id, to);
            let fresh = LayoutReport::evaluate(&netlist, &scratch, &config);
            prop_assert_eq!(delta.report(), fresh);
        }
    }
}
