//! Service-level equivalence suite: the serving layer must be **invisible** in
//! the outputs.
//!
//! Contracts locked down here:
//!
//! * **Served = direct** — running requests through [`ServeEngine`] (cache,
//!   queue, work stealing) yields placements and reports bit-identical to a
//!   plain [`Session::try_run_matrix`] on the same inputs, for Grid / Falcon /
//!   Eagle across all five strategies, at 1 / 3 / 8 workers, cold cache, warm
//!   cache, and snapshot-restored cache alike.
//! * **Warm = pointer-shared** — a cache hit returns the same `Arc` allocation
//!   the cold path produced, not a recomputation.
//! * **Fault isolation** — a poisoned request answers in its own slot while
//!   every sibling stays bit-identical to a clean run, at 1 and 4 workers.
//! * **Store vs oracle** — the intrusive-list LRU store behaves exactly like a
//!   naive `Vec`-based LRU model under random operation sequences (property
//!   tested), and stage-nested keys never collide by construction.

use proptest::prelude::*;
use qgdp::{
    placement_fingerprint, ArtifactKey, DetailedPlacerConfig, FaultInjection, FlowArtifact,
    FlowConfig, LegalizationStrategy, Session,
};
use qgdp_netlist::Placement;
use qgdp_serve::engine::{JobRequest, ServeEngine, ServeError};
use qgdp_serve::snapshot;
use qgdp_serve::store::{ArtifactStore, StoreConfig};
use qgdp_topology::StandardTopology;
use std::sync::Arc;

/// The GP seed shared by every experiment (`qgdp_bench::EXPERIMENT_SEED`).
const EXPERIMENT_SEED: u64 = 20_250_331;

const TOPOLOGIES: [StandardTopology; 3] = [
    StandardTopology::Grid,
    StandardTopology::Falcon,
    StandardTopology::Eagle,
];

fn config() -> FlowConfig {
    FlowConfig::default().with_seed(EXPERIMENT_SEED)
}

/// A deliberately small detail config so the full matrix stays fast.
fn small_detail() -> DetailedPlacerConfig {
    DetailedPlacerConfig {
        max_windows: 6,
        passes: 1,
        ..DetailedPlacerConfig::new()
    }
}

fn placement_of(artifact: &FlowArtifact) -> &Placement {
    match artifact {
        FlowArtifact::Legalized(cell) => cell.placement(),
        FlowArtifact::Detailed(dp) => dp.placement(),
    }
}

/// The request matrix for one topology: all five strategies × {legalize-only,
/// small detail} — strategy-major, matching [`Session::try_run_matrix`].
fn matrix_requests(topology: &Arc<qgdp_topology::Topology>) -> Vec<JobRequest> {
    let mut requests = Vec::new();
    for strategy in LegalizationStrategy::all() {
        for detail in [None, Some(small_detail())] {
            requests.push(JobRequest {
                topology: Arc::clone(topology),
                config: config(),
                strategy,
                detail,
            });
        }
    }
    requests
}

fn assert_matches_direct(
    served: &[Result<FlowArtifact, ServeError>],
    direct: &[Result<FlowArtifact, qgdp::FlowError>],
    label: &str,
) {
    assert_eq!(served.len(), direct.len(), "{label}: result counts");
    for (i, (s, d)) in served.iter().zip(direct).enumerate() {
        match (s, d) {
            (Ok(s), Ok(d)) => {
                assert_eq!(
                    placement_of(s),
                    placement_of(d),
                    "{label}: request {i} placement diverged"
                );
                match (s, d) {
                    (FlowArtifact::Legalized(s), FlowArtifact::Legalized(d)) => {
                        assert_eq!(s.report(), d.report(), "{label}: request {i} report");
                    }
                    (FlowArtifact::Detailed(s), FlowArtifact::Detailed(d)) => {
                        assert_eq!(s.report(), d.report(), "{label}: request {i} report");
                    }
                    _ => panic!("{label}: request {i} stage mismatch"),
                }
            }
            (Err(_), Err(_)) => {}
            (s, d) => panic!("{label}: request {i} outcome mismatch: {s:?} vs {d:?}"),
        }
    }
}

#[test]
fn served_matrix_is_bit_identical_to_direct_session_at_every_worker_count() {
    let details = [None, Some(small_detail())];
    for standard in TOPOLOGIES {
        let topology = Arc::new(standard.build());
        let session = Session::over(Arc::clone(&topology), config()).expect("session builds");
        let direct = session.try_run_matrix(&LegalizationStrategy::all(), &details);
        let requests = matrix_requests(&topology);

        for threads in [1, 3, 8] {
            // Cold: a fresh engine per worker count.
            let engine = ServeEngine::new(StoreConfig::default(), 256);
            let cold = engine.run_batch(&requests, threads);
            assert_matches_direct(&cold, &direct, &format!("{standard} cold t={threads}"));

            // Warm: the same stream again must hit the cache and still match.
            let warm = engine.run_batch(&requests, threads);
            assert_matches_direct(&warm, &direct, &format!("{standard} warm t={threads}"));
            for (c, w) in cold.iter().zip(&warm) {
                let (Ok(c), Ok(w)) = (c, w) else {
                    panic!("{standard}: matrix requests all succeed")
                };
                assert!(
                    std::ptr::eq(placement_of(c), placement_of(w)),
                    "{standard} t={threads}: warm hit must be Arc-shared with cold"
                );
            }
        }
    }
}

#[test]
fn snapshot_restored_cache_serves_bit_identical_artifacts_without_recomputing() {
    for standard in [StandardTopology::Grid, StandardTopology::Falcon] {
        let topology = Arc::new(standard.build());
        let requests = matrix_requests(&topology);

        let origin = ServeEngine::new(StoreConfig::default(), 256);
        let before = origin.run_batch(&requests, 3);

        // Persist through the real codec: encode → bytes → decode → restore.
        let bytes = snapshot::encode(&origin.export_snapshot());
        let restored = ServeEngine::new(StoreConfig::default(), 256);
        let stats = restored
            .restore_snapshot(&snapshot::decode(&bytes).expect("snapshot decodes"))
            .expect("snapshot restores");
        assert!(stats.sessions >= 1 && stats.legalized >= 5 && stats.detailed >= 5);

        let after = restored.run_batch(&requests, 3);
        assert_eq!(
            restored.store_stats().misses,
            0,
            "{standard}: restored cache must serve the stream without recomputing"
        );
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            let (Ok(b), Ok(a)) = (b, a) else {
                panic!("{standard}: matrix requests all succeed")
            };
            assert_eq!(
                placement_fingerprint(placement_of(b)),
                placement_fingerprint(placement_of(a)),
                "{standard}: request {i} diverged across the snapshot boundary"
            );
            match (b, a) {
                (FlowArtifact::Legalized(b), FlowArtifact::Legalized(a)) => {
                    assert_eq!(b.report(), a.report());
                    assert_eq!(b.elapsed(), a.elapsed(), "persisted stage timings");
                }
                (FlowArtifact::Detailed(b), FlowArtifact::Detailed(a)) => {
                    assert_eq!(b.report(), a.report());
                    assert_eq!(b.elapsed(), a.elapsed(), "persisted stage timings");
                }
                _ => panic!("{standard}: stage mismatch across snapshot"),
            }
        }

        // Two warm requests off the restored cache share one allocation.
        let x = restored.execute(&requests[0]).unwrap();
        let y = restored.execute(&requests[0]).unwrap();
        assert!(
            std::ptr::eq(placement_of(&x), placement_of(&y)),
            "{standard}: restored artifacts must be pointer-shared on reuse"
        );
    }
}

#[test]
fn poisoned_request_is_contained_and_siblings_match_at_1_and_4_workers() {
    let topology = Arc::new(StandardTopology::Grid.build());
    let clean: Vec<JobRequest> = LegalizationStrategy::all()
        .into_iter()
        .map(|strategy| JobRequest {
            topology: Arc::clone(&topology),
            config: config(),
            strategy,
            detail: None,
        })
        .collect();
    let mut poisoned = clean.clone();
    poisoned.insert(
        2,
        JobRequest {
            topology: Arc::clone(&topology),
            config: config().with_fault_injection(FaultInjection {
                panic_in_legalization: Some(LegalizationStrategy::Qgdp),
                ..FaultInjection::default()
            }),
            strategy: LegalizationStrategy::Qgdp,
            detail: None,
        },
    );

    for threads in [1, 4] {
        let clean_engine = ServeEngine::new(StoreConfig::default(), 64);
        let clean_results = clean_engine.run_batch(&clean, threads);

        let engine = ServeEngine::new(StoreConfig::default(), 64);
        let results = engine.run_batch(&poisoned, threads);
        assert_eq!(results.len(), clean.len() + 1);
        assert!(
            matches!(
                &results[2],
                Err(ServeError::Flow(qgdp::FlowError::Worker { .. }))
            ),
            "t={threads}: poisoned slot must report the contained panic, got {:?}",
            results[2]
        );
        let siblings: Vec<_> = results[..2].iter().chain(&results[3..]).collect();
        for (i, (s, c)) in siblings.iter().zip(&clean_results).enumerate() {
            let (Ok(s), Ok(c)) = (s, c) else {
                panic!("t={threads}: sibling {i} should succeed")
            };
            assert_eq!(
                placement_of(s),
                placement_of(c),
                "t={threads}: sibling {i} must be bit-identical to a clean run"
            );
        }
    }
}

#[test]
fn fault_injected_requests_are_never_cached_even_when_they_succeed() {
    let topology = Arc::new(StandardTopology::Grid.build());
    // A fault config that targets a strategy we don't run: the request
    // succeeds, but the config is still uncacheable and must bypass the store.
    let request = JobRequest {
        topology,
        config: config().with_fault_injection(FaultInjection {
            fail_legalization: Some(LegalizationStrategy::Tetris),
            ..FaultInjection::default()
        }),
        strategy: LegalizationStrategy::Qgdp,
        detail: None,
    };
    let engine = ServeEngine::new(StoreConfig::default(), 64);
    assert!(engine.execute(&request).is_ok());
    assert_eq!(engine.cached_artifacts(), 0);
    assert!(engine.export_snapshot().sessions.is_empty());
    let stats = engine.store_stats();
    assert_eq!(stats.hits + stats.misses + stats.insertions, 0);
}

// ---------------------------------------------------------------------------
// Store vs naive LRU oracle
// ---------------------------------------------------------------------------

/// A deliberately naive LRU model: a `Vec` ordered MRU-first, linear lookups.
struct OracleLru {
    max_entries: usize,
    max_bytes: usize,
    /// MRU-first `(key bytes, value, bytes)` triples.
    entries: Vec<(Vec<u8>, u64, usize)>,
}

impl OracleLru {
    fn new(max_entries: usize, max_bytes: usize) -> Self {
        OracleLru {
            max_entries,
            max_bytes,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<u64> {
        let pos = self.entries.iter().position(|(k, _, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1;
        self.entries.insert(0, entry);
        Some(value)
    }

    fn total_bytes(&self) -> usize {
        self.entries.iter().map(|(_, _, b)| b).sum()
    }

    fn insert(&mut self, key: Vec<u8>, value: u64, bytes: usize) -> u64 {
        if let Some(existing) = self.get(&key) {
            return existing; // first writer wins, insert touches to MRU
        }
        self.entries.insert(0, (key, value, bytes));
        while self.entries.len() > 1
            && (self.entries.len() > self.max_entries || self.total_bytes() > self.max_bytes)
        {
            self.entries.pop();
        }
        value
    }
}

/// Distinct [`ArtifactKey`]s to index with: seeds × strategies × stage levels,
/// so the oracle run exercises nested stage keys, not just flat blobs.
fn key_universe() -> Vec<ArtifactKey> {
    let topology = StandardTopology::Grid.build();
    let mut keys = Vec::new();
    for seed in 0..4u64 {
        let session = ArtifactKey::session(&topology, &FlowConfig::default().with_seed(seed));
        for strategy in [LegalizationStrategy::Qgdp, LegalizationStrategy::Tetris] {
            let legalized = session.for_strategy(strategy);
            keys.push(legalized.for_detail(&DetailedPlacerConfig::new()));
            keys.push(legalized);
        }
        keys.push(session);
    }
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_naive_lru_oracle(
        max_entries in 1usize..8,
        max_bytes in 1usize..2000,
        ops in proptest::collection::vec((0usize..20, 0u64..1_000_000, 1usize..400, 0usize..2), 1..120),
    ) {
        let keys = key_universe();
        let mut store = ArtifactStore::<u64>::new(StoreConfig { max_entries, max_bytes });
        let mut oracle = OracleLru::new(max_entries, max_bytes);

        for (key_index, value, bytes, op) in ops {
            let key = &keys[key_index % keys.len()];
            if op == 0 {
                let got = store.get(key);
                let expected = oracle.get(key.bytes());
                prop_assert_eq!(got, expected);
            } else {
                let got = store.insert(key.clone(), value, bytes);
                let expected = oracle.insert(key.bytes().to_vec(), value, bytes);
                prop_assert_eq!(got, expected);
            }
            prop_assert_eq!(store.len(), oracle.entries.len());
            prop_assert_eq!(store.total_bytes(), oracle.total_bytes());

            // The store's MRU→LRU walk must equal the oracle's order exactly.
            let mut walked = Vec::new();
            store.for_each(|k, v| walked.push((k.bytes().to_vec(), *v)));
            let expected_walk: Vec<(Vec<u8>, u64)> = oracle
                .entries
                .iter()
                .map(|(k, v, _)| (k.clone(), *v))
                .collect();
            prop_assert_eq!(walked, expected_walk);
        }
    }

    #[test]
    fn artifact_keys_never_collide_across_stage_levels(a in 0usize..25, b in 0usize..25) {
        let keys = key_universe();
        let (ka, kb) = (&keys[a % keys.len()], &keys[b % keys.len()]);
        if a % keys.len() == b % keys.len() {
            prop_assert_eq!(ka, kb);
        } else {
            // Equality is on the full canonical byte encoding: distinct stage
            // paths are distinct keys even if a 64-bit digest were to collide.
            prop_assert_ne!(ka, kb);
            prop_assert_ne!(ka.bytes(), kb.bytes());
        }
    }
}
