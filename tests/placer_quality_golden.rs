//! Golden-snapshot tests for the global-placer rework.
//!
//! The constants below were captured from the *pre-change* placer (the per-iteration
//! density rebuild + per-net clique expansion, now preserved as
//! `GlobalPlacer::place_reference`) under the shared experiment seed.  The optimized
//! hot path — compiled star-net forces, incremental density — must keep final HPWL
//! and post-legalization fidelity within 1% of those snapshots.
//!
//! On the default geometry every deposited bin area is an exactly-representable
//! integer, so the incremental density bookkeeping is exact and the pseudo-net flow
//! actually reproduces the snapshots bit-for-bit; the 1% envelope is the contract,
//! the bit-equality is a bonus asserted separately against `place_reference`.

use qgdp::prelude::*;

/// The GP seed shared by every experiment (`qgdp_bench::EXPERIMENT_SEED`).
const EXPERIMENT_SEED: u64 = 20_250_331;

/// Mappings per benchmark for the fidelity golden (kept small for test runtime).
const MAPPINGS: usize = 5;

/// Captured from the pre-change placer: (topology, GP HPWL, post-legalization HPWL,
/// mean Bv4 fidelity over 5 mappings on the qGDP-legalized layout).
const GOLDEN: [(StandardTopology, f64, f64, f64); 3] = [
    (
        StandardTopology::Grid,
        10134.553373,
        18068.915966,
        0.7500236691,
    ),
    (
        StandardTopology::Falcon,
        7484.242273,
        15449.184189,
        0.6915434840,
    ),
    (
        StandardTopology::Eagle,
        36429.394673,
        76755.071255,
        0.5707928901,
    ),
];

fn within_one_percent(actual: f64, golden: f64) -> bool {
    (actual - golden).abs() <= 0.01 * golden.abs()
}

fn run(topology: StandardTopology) -> FlowResult {
    let cfg = FlowConfig::default().with_seed(EXPERIMENT_SEED);
    run_flow(&topology.build(), LegalizationStrategy::Qgdp, &cfg)
        .unwrap_or_else(|e| panic!("flow failed on {topology}: {e}"))
}

#[test]
fn gp_and_legalized_hpwl_stay_within_the_quality_envelope() {
    for (topology, golden_gp, golden_legal, _) in GOLDEN {
        let result = run(topology);
        let gp = hpwl(&result.netlist, &result.gp_placement);
        assert!(
            within_one_percent(gp, golden_gp),
            "{topology}: GP HPWL {gp:.3} vs golden {golden_gp:.3}"
        );
        let legal = hpwl(&result.netlist, &result.legalized);
        assert!(
            within_one_percent(legal, golden_legal),
            "{topology}: legalized HPWL {legal:.3} vs golden {golden_legal:.3}"
        );
        assert!(result.is_legal(), "{topology}: layout must stay legal");
    }
}

#[test]
fn post_legalization_fidelity_stays_within_the_quality_envelope() {
    for (topology, _, _, golden_fidelity) in GOLDEN {
        let result = run(topology);
        let fidelity = result.mean_benchmark_fidelity(
            Benchmark::Bv4,
            MAPPINGS,
            &NoiseModel::default(),
            EXPERIMENT_SEED ^ Benchmark::Bv4.num_qubits() as u64,
        );
        assert!(
            within_one_percent(fidelity, golden_fidelity),
            "{topology}: fidelity {fidelity:.10} vs golden {golden_fidelity:.10}"
        );
    }
}

#[test]
fn optimized_flow_gp_is_bit_identical_to_the_reference_formulation() {
    // Stronger than the 1% envelope: on the default (integer-area) geometry the
    // optimized hot path must agree with the retained reference implementation
    // bit-for-bit, pin by pin.
    for topology in [StandardTopology::Grid, StandardTopology::Eagle] {
        let topo = topology.build();
        let netlist = topo
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .expect("netlist builds");
        let placer = GlobalPlacer::new(GlobalPlacerConfig::default().with_seed(EXPERIMENT_SEED));
        let optimized = placer.place(&netlist, &topo);
        let reference = placer.place_reference(&netlist, &topo);
        assert_eq!(
            optimized, reference,
            "{topology}: optimized GP diverged from the reference"
        );
    }
}
