//! Cross-strategy integration tests: the five legalization strategies of the paper
//! are batched through [`Session::run_matrix`] — so they share one global placement
//! structurally — and compared on legality, integration and hotspot metrics.

use qgdp::prelude::*;
use std::collections::BTreeMap;

/// Runs all five strategies on one topology off one shared GP artifact.
fn run_all(
    topology: StandardTopology,
    seed: u64,
) -> (Session, BTreeMap<LegalizationStrategy, FlowArtifact>) {
    let session = Session::new(&topology.build(), FlowConfig::default().with_seed(seed))
        .unwrap_or_else(|e| panic!("session for {topology:?}: {e}"));
    let artifacts = session
        .run_matrix(&LegalizationStrategy::all(), &[None])
        .unwrap_or_else(|e| panic!("matrix failed on {topology:?}: {e}"));
    let by_strategy = artifacts.into_iter().map(|a| (a.strategy(), a)).collect();
    (session, by_strategy)
}

#[test]
fn every_strategy_produces_a_legal_layout() {
    for topology in [StandardTopology::Grid, StandardTopology::Xtree] {
        let (_, results) = run_all(topology, 1);
        for (strategy, artifact) in results {
            assert!(artifact.is_legal(), "{strategy} illegal on {topology:?}");
        }
    }
}

#[test]
fn qgdp_has_the_fewest_clusters() {
    let (_, results) = run_all(StandardTopology::Grid, 2);
    let clusters: BTreeMap<_, _> = results
        .iter()
        .map(|(s, a)| (*s, a.report().total_clusters))
        .collect();
    let qgdp = clusters[&LegalizationStrategy::Qgdp];
    for (strategy, &c) in &clusters {
        assert!(
            qgdp <= c,
            "qGDP-LG has {qgdp} clusters but {strategy} has {c}"
        );
    }
}

#[test]
fn qgdp_has_no_more_hotspots_than_classical_baselines() {
    let (_, results) = run_all(StandardTopology::Aspen11, 3);
    let qgdp = results[&LegalizationStrategy::Qgdp]
        .report()
        .hotspot_proportion_percent;
    for strategy in [LegalizationStrategy::Tetris, LegalizationStrategy::Abacus] {
        let classical = results[&strategy].report().hotspot_proportion_percent;
        assert!(
            qgdp <= classical + 1e-9,
            "qGDP P_h {qgdp:.3}% vs {strategy} {classical:.3}%"
        );
    }
}

#[test]
fn quantum_qubit_stage_reduces_qubit_hotspots() {
    // Compare Q-Tetris vs Tetris: identical wire-block stage, different qubit stage.
    // The quantum-aware qubit stage must not increase the number of qubit–qubit
    // spatial violations, and must respect the one-cell minimum spacing.
    use qgdp::metrics::find_violations;
    let (session, results) = run_all(StandardTopology::Grid, 4);
    let qubit_violations = |strategy: LegalizationStrategy| {
        let artifact = &results[&strategy];
        find_violations(
            session.netlist(),
            artifact.final_placement(),
            &CrosstalkConfig::default(),
        )
        .iter()
        .filter(|v| v.a.is_qubit() && v.b.is_qubit())
        .count()
    };
    assert!(
        qubit_violations(LegalizationStrategy::QTetris)
            <= qubit_violations(LegalizationStrategy::Tetris)
    );

    // Minimum spacing holds for the quantum qubit stage.
    let artifact = &results[&LegalizationStrategy::QTetris];
    let netlist = session.netlist();
    let placement = artifact.final_placement();
    let spacing = netlist.geometry().min_qubit_spacing();
    let qubits: Vec<QubitId> = netlist.qubit_ids().collect();
    for (i, &a) in qubits.iter().enumerate() {
        for &b in &qubits[i + 1..] {
            let ra = netlist.qubit(a).rect_at(placement.qubit(a));
            let rb = netlist.qubit(b).rect_at(placement.qubit(b));
            assert!(
                ra.gap(&rb) >= spacing - 1e-6,
                "Q-Tetris left qubits {a} and {b} only {:.2} µm apart",
                ra.gap(&rb)
            );
        }
    }
}

#[test]
fn all_strategies_fix_every_qubit_inside_the_die() {
    let (session, results) = run_all(StandardTopology::Xtree, 5);
    for (strategy, artifact) in &results {
        let die = artifact.die();
        for q in session.netlist().qubit_ids() {
            let rect = session
                .netlist()
                .qubit(q)
                .rect_at(artifact.final_placement().qubit(q));
            assert!(
                die.contains_rect(&rect),
                "{strategy}: qubit {q} outside the die"
            );
        }
    }
}

#[test]
fn strategies_share_the_same_gp_input() {
    // The staged API makes the paper's "all comparisons are based on the same GP
    // positions" structural: every artifact of the matrix holds the *same* GP
    // allocation, not a value-equal copy.
    let (_, results) = run_all(StandardTopology::Grid, 6);
    let reference = results[&LegalizationStrategy::Qgdp].legalized().global();
    for (strategy, artifact) in &results {
        let gp = artifact.legalized().global();
        assert!(
            std::ptr::eq(gp.placement(), reference.placement()),
            "{strategy} saw a different GP allocation"
        );
        assert_eq!(
            gp.placement(),
            reference.placement(),
            "{strategy} saw different GP positions"
        );
    }
}

#[test]
fn fidelity_ordering_qgdp_not_worse_than_classical() {
    let (_, results) = run_all(StandardTopology::Grid, 7);
    let noise = NoiseModel::default();
    let fidelity = |s: LegalizationStrategy| {
        results[&s].mean_benchmark_fidelity(Benchmark::Qaoa4, 8, &noise, 99)
    };
    let f_qgdp = fidelity(LegalizationStrategy::Qgdp);
    let f_tetris = fidelity(LegalizationStrategy::Tetris);
    let f_abacus = fidelity(LegalizationStrategy::Abacus);
    assert!(
        f_qgdp >= f_tetris - 1e-9,
        "qGDP fidelity {f_qgdp:.4} below Tetris {f_tetris:.4}"
    );
    assert!(
        f_qgdp >= f_abacus - 1e-9,
        "qGDP fidelity {f_qgdp:.4} below Abacus {f_abacus:.4}"
    );
}
