//! Cross-strategy integration tests: the five legalization strategies of the paper are
//! all run on the same global placements and compared on legality, integration and
//! hotspot metrics.

use qgdp::prelude::*;
use std::collections::BTreeMap;

/// Runs all five strategies on one topology with a shared GP seed.
fn run_all(topology: StandardTopology, seed: u64) -> BTreeMap<LegalizationStrategy, FlowResult> {
    let topo = topology.build();
    LegalizationStrategy::all()
        .into_iter()
        .map(|s| {
            let result = run_flow(&topo, s, &FlowConfig::default().with_seed(seed))
                .unwrap_or_else(|e| panic!("{s} failed on {topology:?}: {e}"));
            (s, result)
        })
        .collect()
}

#[test]
fn every_strategy_produces_a_legal_layout() {
    for topology in [StandardTopology::Grid, StandardTopology::Xtree] {
        for (strategy, result) in run_all(topology, 1) {
            assert!(result.is_legal(), "{strategy} illegal on {topology:?}");
        }
    }
}

#[test]
fn qgdp_has_the_fewest_clusters() {
    let results = run_all(StandardTopology::Grid, 2);
    let clusters: BTreeMap<_, _> = results
        .iter()
        .map(|(s, r)| (*s, r.legalized_report.total_clusters))
        .collect();
    let qgdp = clusters[&LegalizationStrategy::Qgdp];
    for (strategy, &c) in &clusters {
        assert!(
            qgdp <= c,
            "qGDP-LG has {qgdp} clusters but {strategy} has {c}"
        );
    }
}

#[test]
fn qgdp_has_no_more_hotspots_than_classical_baselines() {
    let results = run_all(StandardTopology::Aspen11, 3);
    let qgdp = results[&LegalizationStrategy::Qgdp]
        .legalized_report
        .hotspot_proportion_percent;
    for strategy in [LegalizationStrategy::Tetris, LegalizationStrategy::Abacus] {
        let classical = results[&strategy]
            .legalized_report
            .hotspot_proportion_percent;
        assert!(
            qgdp <= classical + 1e-9,
            "qGDP P_h {qgdp:.3}% vs {strategy} {classical:.3}%"
        );
    }
}

#[test]
fn quantum_qubit_stage_reduces_qubit_hotspots() {
    // Compare Q-Tetris vs Tetris: identical wire-block stage, different qubit stage.
    // The quantum-aware qubit stage must not increase the number of qubit–qubit
    // spatial violations, and must respect the one-cell minimum spacing.
    use qgdp::metrics::find_violations;
    let results = run_all(StandardTopology::Grid, 4);
    let qubit_violations = |strategy: LegalizationStrategy| {
        let r = &results[&strategy];
        find_violations(&r.netlist, &r.legalized, &CrosstalkConfig::default())
            .iter()
            .filter(|v| v.a.is_qubit() && v.b.is_qubit())
            .count()
    };
    assert!(
        qubit_violations(LegalizationStrategy::QTetris)
            <= qubit_violations(LegalizationStrategy::Tetris)
    );

    // Minimum spacing holds for the quantum qubit stage.
    let r = &results[&LegalizationStrategy::QTetris];
    let spacing = r.netlist.geometry().min_qubit_spacing();
    let qubits: Vec<QubitId> = r.netlist.qubit_ids().collect();
    for (i, &a) in qubits.iter().enumerate() {
        for &b in &qubits[i + 1..] {
            let ra = r.netlist.qubit(a).rect_at(r.legalized.qubit(a));
            let rb = r.netlist.qubit(b).rect_at(r.legalized.qubit(b));
            assert!(
                ra.gap(&rb) >= spacing - 1e-6,
                "Q-Tetris left qubits {a} and {b} only {:.2} µm apart",
                ra.gap(&rb)
            );
        }
    }
}

#[test]
fn all_strategies_fix_every_qubit_inside_the_die() {
    for (strategy, result) in run_all(StandardTopology::Xtree, 5) {
        for q in result.netlist.qubit_ids() {
            let rect = result
                .netlist
                .qubit(q)
                .rect_at(result.final_placement().qubit(q));
            assert!(
                result.die.contains_rect(&rect),
                "{strategy}: qubit {q} outside the die"
            );
        }
    }
}

#[test]
fn strategies_share_the_same_gp_input() {
    // With the same seed, every strategy starts from the same GP positions, so the
    // comparison is apples-to-apples (the paper's "all comparisons are based on the
    // same GP positions").
    let results = run_all(StandardTopology::Grid, 6);
    let reference = &results[&LegalizationStrategy::Qgdp].gp_placement;
    for (strategy, result) in &results {
        assert_eq!(
            &result.gp_placement, reference,
            "{strategy} saw a different GP layout"
        );
    }
}

#[test]
fn fidelity_ordering_qgdp_not_worse_than_classical() {
    let results = run_all(StandardTopology::Grid, 7);
    let noise = NoiseModel::default();
    let fidelity = |s: LegalizationStrategy| {
        results[&s].mean_benchmark_fidelity(Benchmark::Qaoa4, 8, &noise, 99)
    };
    let f_qgdp = fidelity(LegalizationStrategy::Qgdp);
    let f_tetris = fidelity(LegalizationStrategy::Tetris);
    let f_abacus = fidelity(LegalizationStrategy::Abacus);
    assert!(
        f_qgdp >= f_tetris - 1e-9,
        "qGDP fidelity {f_qgdp:.4} below Tetris {f_tetris:.4}"
    );
    assert!(
        f_qgdp >= f_abacus - 1e-9,
        "qGDP fidelity {f_qgdp:.4} below Abacus {f_abacus:.4}"
    );
}
