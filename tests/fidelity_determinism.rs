//! Determinism regression suite for the parallel fidelity pipeline.
//!
//! Two contracts are locked down with golden values captured from the pre-cache,
//! single-threaded implementation:
//!
//! 1. **Mapping stability** — caching the topology's distance matrix must not change
//!    `map_circuit` output for any seed: the op streams of four (topology, benchmark,
//!    seed) probes are pinned by FNV-1a hashes.
//! 2. **Reduction stability** — `FidelityEvaluator::mean` must return bit-identical
//!    results for every thread count (`QGDP_THREADS=1` vs `QGDP_THREADS=4`, and the
//!    explicit `mean_with_threads` API), and those bits must equal the golden value of
//!    the serial pre-refactor implementation.

use qgdp::circuits::{Gate, GateKind, PhysicalOp};
use qgdp::metrics::FidelityEvaluator;
use qgdp::prelude::*;

/// FNV-1a over a stable encoding of a mapped circuit's op stream.
fn hash_mapped(m: &MappedCircuit) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    let kind_code = |k: GateKind| -> u64 {
        match k {
            GateKind::H => 0,
            GateKind::X => 1,
            GateKind::Z => 2,
            GateKind::Rz(a) => 100 ^ a.to_bits(),
            GateKind::Rx(a) => 200 ^ a.to_bits(),
            GateKind::Ry(a) => 300 ^ a.to_bits(),
            GateKind::Cx => 3,
            GateKind::Cz => 4,
            GateKind::Swap => 5,
            GateKind::Measure => 6,
            _ => 7,
        }
    };
    eat(m.num_physical_qubits() as u64);
    eat(m.swaps_inserted() as u64);
    for op in m.ops() {
        match *op {
            PhysicalOp::Single { qubit, kind } => {
                eat(1);
                eat(qubit as u64);
                eat(kind_code(kind));
            }
            PhysicalOp::Two { a, b, kind } => {
                eat(2);
                eat(a as u64);
                eat(b as u64);
                eat(kind_code(kind));
            }
        }
    }
    h
}

/// The Grid qGDP flow layout every fidelity golden below is evaluated on.
fn flow_result() -> FlowResult {
    let topo = StandardTopology::Grid.build();
    run_flow(
        &topo,
        LegalizationStrategy::Qgdp,
        &FlowConfig::default().with_seed(20_250_331),
    )
    .expect("qGDP flow succeeds on the grid")
}

#[test]
fn map_circuit_is_unchanged_from_pre_cache_implementation() {
    let grid = StandardTopology::Grid.build();
    let falcon = StandardTopology::Falcon.build();
    // (topology, benchmark, seed, golden op-stream hash, swaps, ops) captured from
    // the pre-cache implementation (per-call BFS, nested Vec<Vec<usize>> distances).
    let probes: [(&Topology, Benchmark, u64, u64, usize, usize); 4] = [
        (&grid, Benchmark::Bv4, 42, 0x634161b3d98332b5, 3, 23),
        (&grid, Benchmark::Qaoa4, 7, 0x1bcd42d7a2c30cfe, 2, 30),
        (&falcon, Benchmark::Bv9, 3, 0x756da05c309c1874, 22, 100),
        (&falcon, Benchmark::Qgan9, 123, 0xd43e3cc8c4c39126, 54, 258),
    ];
    for (topo, bench, seed, golden_hash, golden_swaps, golden_ops) in probes {
        let mapped = map_circuit(&bench.circuit(), topo, seed);
        assert_eq!(mapped.swaps_inserted(), golden_swaps, "{bench:?}/{seed}");
        assert_eq!(mapped.ops().len(), golden_ops, "{bench:?}/{seed}");
        assert_eq!(
            hash_mapped(&mapped),
            golden_hash,
            "{bench:?}/{seed}: op stream drifted from the pre-cache implementation"
        );
    }
}

#[test]
fn mean_fidelity_matches_pre_refactor_golden_bits() {
    let result = flow_result();
    let noise = NoiseModel::default();
    // (benchmark, mappings, seed, golden f64 bits of the serial pre-refactor mean).
    for (bench, count, seed, golden_bits) in [
        (Benchmark::Bv4, 8, 7u64, 0x3fe9b9e8d50aa212u64),
        (Benchmark::Qaoa4, 5, 99, 0x3fe2935c393e5e5e),
    ] {
        let maps = random_mappings(&bench.circuit(), &result.topology, count, seed);
        let mean = mean_fidelity(
            &result.netlist,
            result.final_placement(),
            &maps,
            &noise,
            &result.crosstalk,
        );
        assert_eq!(
            mean.to_bits(),
            golden_bits,
            "{bench:?}: mean {mean:.17} drifted from the pre-refactor golden"
        );
    }
}

#[test]
fn qgdp_threads_env_does_not_change_bits() {
    let result = flow_result();
    let evaluator = FidelityEvaluator::new(
        &result.netlist,
        result.final_placement(),
        NoiseModel::default(),
        &result.crosstalk,
    );
    let maps = random_mappings(&Benchmark::Qaoa4.circuit(), &result.topology, 50, 4242);

    // The env-driven path: QGDP_THREADS=1 vs QGDP_THREADS=4.  The determinism
    // contract makes the env value immaterial to the bits, so this sequence is safe
    // even if another test in this binary evaluates a mean concurrently.
    std::env::set_var("QGDP_THREADS", "1");
    assert_eq!(worker_threads(), 1);
    let serial = evaluator.mean(&maps);
    std::env::set_var("QGDP_THREADS", "4");
    assert_eq!(worker_threads(), 4);
    let parallel = evaluator.mean(&maps);
    std::env::remove_var("QGDP_THREADS");
    assert!(worker_threads() >= 1);
    assert_eq!(
        serial.to_bits(),
        parallel.to_bits(),
        "QGDP_THREADS=1 ({serial:.17}) vs QGDP_THREADS=4 ({parallel:.17})"
    );

    // The explicit API across a spread of pool sizes, including more threads than
    // mappings.
    for threads in [2, 3, 7, 50, 128] {
        assert_eq!(
            evaluator.mean_with_threads(&maps, threads).to_bits(),
            serial.to_bits(),
            "threads={threads}"
        );
    }
}

#[test]
fn single_qubit_circuits_survive_the_worker_pool() {
    let result = flow_result();
    let evaluator = FidelityEvaluator::new(
        &result.netlist,
        result.final_placement(),
        NoiseModel::default(),
        &result.crosstalk,
    );
    // A one-qubit benchmark has no two-qubit gates: no SWAPs, no active resonators.
    let mut circuit = Circuit::new(1);
    circuit.push(Gate::one(GateKind::H, 0));
    circuit.push(Gate::one(GateKind::Measure, 0));
    let maps = random_mappings(&circuit, &result.topology, 6, 11);
    for m in &maps {
        assert_eq!(m.swaps_inserted(), 0);
        assert_eq!(m.active_qubits().len(), 1);
    }
    let serial = evaluator.mean_with_threads(&maps, 1);
    let parallel = evaluator.mean_with_threads(&maps, 4);
    assert!(serial > 0.0 && serial <= 1.0);
    assert_eq!(serial.to_bits(), parallel.to_bits());
}
