//! Golden equivalence suite for the spatial-index overlap-detection stack.
//!
//! The qubit-legalization engine and the placement overlap statistic each ship an
//! optimized implementation (spatial index / sweepline) and a retained O(n²)
//! reference.  On realistic inputs — global placements of the paper's standard
//! topologies — the optimized paths must be **bit-identical** to their references:
//! same centres, same counts, same achieved spacing, same errors.

use qgdp::legalize::{legalize_macros, legalize_macros_reference, macros_are_legal};
use qgdp::prelude::*;

/// The GP input each equivalence check runs on.
struct GpCase {
    netlist: QuantumNetlist,
    die: Rect,
    gp: Placement,
}

fn gp_case(topology: StandardTopology) -> GpCase {
    let topo = topology.build();
    let netlist = topo
        .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
        .expect("netlist builds");
    let placed = GlobalPlacer::new(GlobalPlacerConfig::default()).place(&netlist, &topo);
    GpCase {
        netlist,
        die: placed.die,
        gp: placed.placement,
    }
}

fn qubit_rects(case: &GpCase) -> Vec<Rect> {
    case.netlist
        .qubit_ids()
        .map(|q| case.netlist.qubit(q).rect_at(case.gp.qubit(q)))
        .collect()
}

#[test]
fn macro_engine_bit_identical_on_standard_topologies() {
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ] {
        let case = gp_case(topology);
        let desired = qubit_rects(&case);
        let spacing = case.netlist.geometry().min_qubit_spacing();
        for s in [0.0, spacing * 0.5, spacing] {
            let optimized = legalize_macros(&desired, &case.die, s);
            let reference = legalize_macros_reference(&desired, &case.die, s);
            match (optimized, reference) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{topology}: engines diverged at spacing {s}");
                    assert!(
                        macros_are_legal(&desired, &a, &case.die, s),
                        "{topology}: result fails the legality oracle at spacing {s}"
                    );
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("{topology}: outcomes disagree: {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn quantum_qubit_legalizer_paths_bit_identical() {
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ] {
        let case = gp_case(topology);
        let lg = QuantumQubitLegalizer::new();
        let (fast, fast_spacing) = lg
            .legalize_with_spacing(&case.netlist, &case.die, &case.gp)
            .expect("qubit legalization succeeds on standard topologies");
        let (reference, reference_spacing) = lg
            .legalize_with_spacing_reference(&case.netlist, &case.die, &case.gp)
            .expect("reference path succeeds whenever the hot path does");
        assert_eq!(fast, reference, "{topology}: legalized placements diverged");
        assert_eq!(
            fast_spacing.to_bits(),
            reference_spacing.to_bits(),
            "{topology}: achieved spacing diverged"
        );
    }
}

#[test]
fn overlap_statistic_bit_identical_on_gp_and_legalized_layouts() {
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ] {
        let case = gp_case(topology);
        assert_eq!(
            case.gp.count_overlaps(&case.netlist),
            case.gp.count_overlaps_reference(&case.netlist),
            "{topology}: sweepline diverged from reference on the GP layout"
        );
        let (legalized, _) = QuantumQubitLegalizer::new()
            .legalize_with_spacing(&case.netlist, &case.die, &case.gp)
            .expect("qubit legalization succeeds");
        assert_eq!(
            legalized.count_overlaps(&case.netlist),
            legalized.count_overlaps_reference(&case.netlist),
            "{topology}: sweepline diverged from reference on the legalized layout"
        );
    }
}

#[test]
fn sweepline_matches_reference_on_degenerate_stacks() {
    // Everything at the origin: maximum overlap depth, the sweepline's worst case.
    let netlist = NetlistBuilder::new(ComponentGeometry::default())
        .qubits(4)
        .couple(0, 1)
        .couple(1, 2)
        .couple(2, 3)
        .build()
        .expect("netlist builds");
    let stacked = Placement::new(&netlist);
    assert_eq!(
        stacked.count_overlaps(&netlist),
        stacked.count_overlaps_reference(&netlist)
    );
    let n = netlist.num_components();
    assert_eq!(stacked.count_overlaps(&netlist), n * (n - 1) / 2);
}

#[test]
fn engine_agreement_extends_to_synthetic_large_n() {
    use qgdp_geometry::Point;
    use rand::{Rng, SeedableRng};
    // A mid-size uniform-random macro set (larger than any standard topology) keeps
    // the golden suite honest beyond the device sizes the paper ships.
    let n = 400;
    let size = 40.0;
    let spacing = 10.0;
    let side = ((n as f64) * (size + spacing) * (size + spacing) / 0.35).sqrt();
    let die = Rect::from_lower_left(Point::ORIGIN, side, side);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
    let desired: Vec<Rect> = (0..n)
        .map(|_| {
            let x = rng.gen_range(size * 0.5..side - size * 0.5);
            let y = rng.gen_range(size * 0.5..side - size * 0.5);
            Rect::from_center(Point::new(x, y), size, size)
        })
        .collect();
    let optimized = legalize_macros(&desired, &die, spacing).expect("legalizes");
    let reference = legalize_macros_reference(&desired, &die, spacing).expect("legalizes");
    assert_eq!(optimized, reference, "synthetic large-n run diverged");
    assert!(macros_are_legal(&desired, &optimized, &die, spacing));
}
