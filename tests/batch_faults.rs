//! Fault-isolation suite for the Session batch engine.
//!
//! A failing or panicking legalization strategy must poison **only its own
//! requests**: every sibling request still returns an artifact that is
//! bit-identical to what an all-success run produces, the result vector stays in
//! request order, and the per-request outcome vector is invariant under the
//! worker count.  The suite drives both the deterministic [`FaultInjection`]
//! knob and an *organic* config-reachable failure (an over-packed die on which
//! some strategies run out of legal space) through 1, 3 and 8 workers.

use qgdp::prelude::*;

/// The GP seed shared by every experiment (`qgdp_bench::EXPERIMENT_SEED`).
const EXPERIMENT_SEED: u64 = 20_250_331;

const WORKER_COUNTS: [usize; 3] = [1, 3, 8];

fn config() -> FlowConfig {
    FlowConfig::default().with_seed(EXPERIMENT_SEED)
}

/// A config on which legalization fails *organically* for some strategies but
/// not all: double-size qubit pads on a die sized for 90 % utilization leave
/// enough room for the quantum-aware legalizers but starve the classical ones.
fn overpacked_config() -> FlowConfig {
    let geometry = ComponentGeometry {
        qubit_width: 80.0,
        qubit_height: 80.0,
        ..ComponentGeometry::new()
    };
    FlowConfig::default()
        .with_seed(7)
        .with_geometry(geometry)
        .with_gp(GlobalPlacerConfig::default().with_utilization(0.9))
}

fn all_strategy_requests() -> Vec<FlowRequest> {
    LegalizationStrategy::all()
        .into_iter()
        .map(FlowRequest::legalize)
        .collect()
}

/// Asserts two errors describe the same failure.  `StageEvent` durations are
/// wall-clock and excluded: the invariant context is the source (via
/// `Display`), stage, strategy, request index and the *sequence* of completed
/// stages.
fn assert_same_failure(a: &FlowError, b: &FlowError, context: &str) {
    assert_eq!(a.to_string(), b.to_string(), "{context}");
    assert_eq!(a.stage(), b.stage(), "{context}");
    assert_eq!(a.strategy(), b.strategy(), "{context}");
    assert_eq!(a.request(), b.request(), "{context}");
    assert_eq!(
        a.events().iter().map(|e| e.stage).collect::<Vec<_>>(),
        b.events().iter().map(|e| e.stage).collect::<Vec<_>>(),
        "{context}"
    );
}

/// Runs `f` with the default panic hook silenced so contained panics do not
/// spam the test output.
fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = f();
    std::panic::set_hook(hook);
    result
}

#[test]
fn injected_failure_leaves_siblings_bit_identical_for_every_worker_count() {
    let topo = StandardTopology::Grid.build();
    let fault = FaultInjection {
        fail_legalization: Some(LegalizationStrategy::QTetris),
        panic_in_legalization: None,
    };
    let poisoned = Session::new(&topo, config().with_fault_injection(fault)).expect("session");
    let clean = Session::new(&topo, config()).expect("session");
    let requests = all_strategy_requests();
    let baseline = clean
        .run_batch(&requests)
        .expect("all strategies succeed without injection");

    for threads in WORKER_COUNTS {
        let results = poisoned.try_run_batch_with_threads(&requests, threads);
        assert_eq!(results.len(), requests.len(), "threads={threads}");
        for (index, (request, result)) in requests.iter().zip(&results).enumerate() {
            if request.strategy == LegalizationStrategy::QTetris {
                let error = result.as_ref().expect_err("poisoned strategy must fail");
                assert_eq!(error.stage(), Some(Stage::QubitLegalization));
                assert_eq!(error.strategy(), Some(LegalizationStrategy::QTetris));
                assert_eq!(error.request(), Some(index), "threads={threads}");
            } else {
                let artifact = result.as_ref().unwrap_or_else(|e| {
                    panic!(
                        "sibling {} lost at threads={threads}: {e}",
                        request.strategy
                    )
                });
                assert_eq!(
                    artifact.final_placement(),
                    baseline[index].final_placement(),
                    "{}/threads={threads}: sibling placement diverged from all-success run",
                    request.strategy
                );
                assert_eq!(
                    artifact.report(),
                    baseline[index].report(),
                    "{}/threads={threads}: sibling report diverged from all-success run",
                    request.strategy
                );
            }
        }
    }
}

#[test]
fn injected_panic_is_contained_for_every_worker_count() {
    let topo = StandardTopology::Grid.build();
    let fault = FaultInjection {
        fail_legalization: None,
        panic_in_legalization: Some(LegalizationStrategy::Abacus),
    };
    let poisoned = Session::new(&topo, config().with_fault_injection(fault)).expect("session");
    let requests = all_strategy_requests();

    for threads in WORKER_COUNTS {
        let results = with_quiet_panics(|| poisoned.try_run_batch_with_threads(&requests, threads));
        for (index, (request, result)) in requests.iter().zip(&results).enumerate() {
            if request.strategy == LegalizationStrategy::Abacus {
                match result {
                    Err(FlowError::Worker {
                        stage,
                        message,
                        strategy,
                        request,
                    }) => {
                        assert_eq!(*stage, Stage::QubitLegalization, "threads={threads}");
                        assert!(message.contains("injected fault"), "message: {message}");
                        assert_eq!(*strategy, Some(LegalizationStrategy::Abacus));
                        assert_eq!(*request, Some(index), "threads={threads}");
                    }
                    other => panic!("expected a contained Worker error, got {other:?}"),
                }
            } else {
                assert!(
                    result.is_ok(),
                    "{}/threads={threads}: sibling lost to a contained panic: {result:?}",
                    request.strategy
                );
            }
        }
    }
}

#[test]
fn organic_failures_are_request_ordered_and_worker_count_invariant() {
    // No injection here: the over-packed die makes some strategies run out of
    // legal space on their own.  The suite does not hard-code *which* strategies
    // fail — only that failures carry full context and siblings stay intact.
    let topo = StandardTopology::Grid.build();
    let session = Session::new(&topo, overpacked_config()).expect("session");
    // Interleave duplicate requests so request indices and strategy identity
    // disagree — ordering bugs cannot hide.
    let mut requests = all_strategy_requests();
    requests.extend(all_strategy_requests());

    let serial = session.try_run_batch_with_threads(&requests, 1);
    assert_eq!(serial.len(), requests.len());
    let failures = serial.iter().filter(|r| r.is_err()).count();
    assert!(
        failures > 0 && failures < serial.len(),
        "the over-packed config must fail some strategies but not all \
         (got {failures}/{} failures)",
        serial.len()
    );

    for (index, (request, result)) in requests.iter().zip(&serial).enumerate() {
        match result {
            Ok(artifact) => assert_eq!(
                artifact.strategy(),
                request.strategy,
                "request {index}: artifact answers the wrong request"
            ),
            Err(error) => {
                assert_eq!(error.strategy(), Some(request.strategy), "request {index}");
                assert_eq!(error.request(), Some(index));
                assert!(error.stage().is_some(), "request {index}: stage missing");
                assert!(
                    !error.events().is_empty(),
                    "request {index}: the trace up to the failing stage is missing"
                );
            }
        }
    }

    for threads in &WORKER_COUNTS[1..] {
        let parallel = session.try_run_batch_with_threads(&requests, *threads);
        for (index, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            match (a, b) {
                (Ok(a), Ok(b)) => assert_eq!(
                    a.final_placement(),
                    b.final_placement(),
                    "request {index}: placement depends on threads={threads}"
                ),
                (Err(a), Err(b)) => assert_same_failure(
                    a,
                    b,
                    &format!("request {index}: error depends on threads={threads}"),
                ),
                other => panic!("request {index} outcome flipped at threads={threads}: {other:?}"),
            }
        }
    }
}

#[test]
fn organic_failure_siblings_match_their_solo_runs() {
    // Each surviving strategy's batched artifact must be bit-identical to the
    // same strategy run alone — failures elsewhere in the batch are invisible.
    let topo = StandardTopology::Grid.build();
    let session = Session::new(&topo, overpacked_config()).expect("session");
    let requests = all_strategy_requests();
    let batched = session.try_run_batch_with_threads(&requests, 3);

    for (request, result) in requests.iter().zip(&batched) {
        let solo = session.try_run_batch_with_threads(std::slice::from_ref(request), 1);
        match (&solo[0], result) {
            (Ok(solo), Ok(batched)) => {
                assert_eq!(
                    solo.final_placement(),
                    batched.final_placement(),
                    "{}: batched placement differs from the solo run",
                    request.strategy
                );
                assert_eq!(solo.report(), batched.report(), "{}", request.strategy);
            }
            (Err(solo), Err(batched)) => {
                // Context differs only in the request index.
                assert_eq!(solo.strategy(), batched.strategy(), "{}", request.strategy);
                assert_eq!(solo.stage(), batched.stage(), "{}", request.strategy);
            }
            other => panic!(
                "{}: outcome flipped between solo and batched runs: {other:?}",
                request.strategy
            ),
        }
    }
}

#[test]
fn try_matrix_isolates_faults_per_cell() {
    let topo = StandardTopology::Grid.build();
    let fault = FaultInjection {
        fail_legalization: Some(LegalizationStrategy::QAbacus),
        panic_in_legalization: None,
    };
    let session = Session::new(&topo, config().with_fault_injection(fault)).expect("session");
    let strategies = LegalizationStrategy::all();
    let details = [None, Some(DetailedPlacerConfig::new())];
    let results = session.try_run_matrix(&strategies, &details);
    assert_eq!(results.len(), strategies.len() * details.len());
    // Matrix cells are strategy-major: both cells of the poisoned strategy fail,
    // every other cell succeeds.
    for (cell, result) in results.iter().enumerate() {
        let strategy = strategies[cell / details.len()];
        if strategy == LegalizationStrategy::QAbacus {
            let error = result.as_ref().expect_err("poisoned cells must fail");
            assert_eq!(error.strategy(), Some(LegalizationStrategy::QAbacus));
            assert_eq!(error.request(), Some(cell));
        } else {
            assert!(result.is_ok(), "cell {cell} ({strategy}) was lost");
        }
    }
}
