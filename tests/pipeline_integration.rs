//! End-to-end integration tests of the staged qGDP pipeline across crates: topology
//! generation, netlist construction, global placement, both legalization stages,
//! detailed placement and metric evaluation all exercised together through the
//! [`Session`] artifact API (the `run_flow` shim has its own equivalence suite in
//! `session_equivalence.rs`).

use qgdp::prelude::*;

/// The staged artifacts of one full pipeline run.
struct Staged {
    session: Session,
    gp: GlobalPlacement,
    legalized: CellLegalized,
    detailed: Option<Detailed>,
}

fn flow(topology: StandardTopology, strategy: LegalizationStrategy, dp: bool) -> Staged {
    let session = Session::new(&topology.build(), FlowConfig::default().with_seed(2024))
        .expect("session builds");
    let gp = session.global_place();
    let legalized = gp.legalize(strategy).expect("legalization succeeds");
    let detailed = dp.then(|| legalized.detail());
    Staged {
        session,
        gp,
        legalized,
        detailed,
    }
}

#[test]
fn qgdp_flow_is_legal_on_every_standard_topology() {
    for topology in StandardTopology::all() {
        let staged = flow(topology, LegalizationStrategy::Qgdp, false);
        assert!(
            staged.legalized.is_legal(),
            "{topology:?}: qGDP-LG produced an illegal layout"
        );
        assert_eq!(staged.session.netlist().num_qubits(), topology.num_qubits());
    }
}

#[test]
fn gp_layout_is_illegal_but_legalization_fixes_it() {
    let staged = flow(StandardTopology::Falcon, LegalizationStrategy::Qgdp, false);
    let netlist = staged.session.netlist();
    // The GP layout is expected to contain overlaps (that is the point of legalizing).
    let gp_overlaps = staged.gp.placement().count_overlaps(netlist);
    let lg_overlaps = staged.legalized.placement().count_overlaps(netlist);
    assert!(gp_overlaps > 0, "GP should leave overlaps for LG to fix");
    assert_eq!(lg_overlaps, 0, "legalization must remove every overlap");
}

#[test]
fn legalization_preserves_gp_structure() {
    // Legalization should displace components, not scramble them: the total
    // displacement per component must stay well below the die diagonal.
    let staged = flow(StandardTopology::Grid, LegalizationStrategy::Qgdp, false);
    let per_component = staged
        .legalized
        .placement()
        .total_displacement_from(staged.gp.placement())
        / staged.session.netlist().num_components() as f64;
    let die = staged.gp.die();
    let diagonal = (die.width().powi(2) + die.height().powi(2)).sqrt();
    assert!(
        per_component < diagonal * 0.25,
        "average displacement {per_component:.1} µm vs die diagonal {diagonal:.1} µm"
    );
}

#[test]
fn detailed_placement_only_improves_the_layout() {
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Xtree,
        StandardTopology::Aspen11,
    ] {
        let staged = flow(topology, LegalizationStrategy::Qgdp, true);
        let lg = staged.legalized.report();
        let dp_artifact = staged.detailed.as_ref().expect("DP ran");
        let dp = dp_artifact.report();
        assert!(dp_artifact.is_legal(), "{topology:?}: DP output illegal");
        assert!(
            dp.total_clusters <= lg.total_clusters,
            "{topology:?}: DP increased cluster count"
        );
        assert!(
            dp.unified_resonators >= lg.unified_resonators,
            "{topology:?}: DP reduced I_edge"
        );
        assert!(
            dp.hotspot_proportion_percent <= lg.hotspot_proportion_percent + 1e-9,
            "{topology:?}: DP increased P_h"
        );
        assert!(
            dp.hotspot_qubits <= lg.hotspot_qubits,
            "{topology:?}: DP increased H_Q"
        );
    }
}

#[test]
fn detailed_placement_never_moves_qubits() {
    let staged = flow(StandardTopology::Aspen11, LegalizationStrategy::Qgdp, true);
    let dp = staged.detailed.as_ref().expect("DP ran");
    for q in staged.session.netlist().qubit_ids() {
        assert_eq!(
            dp.placement().qubit(q),
            staged.legalized.placement().qubit(q)
        );
    }
}

#[test]
fn quantum_qubit_legalizer_enforces_min_spacing_on_real_gp() {
    let staged = flow(StandardTopology::Grid, LegalizationStrategy::Qgdp, false);
    let netlist = staged.session.netlist();
    let spacing = netlist.geometry().min_qubit_spacing();
    let legalized = staged.legalized.placement();
    let mut min_gap = f64::INFINITY;
    let qubits: Vec<QubitId> = netlist.qubit_ids().collect();
    for (i, &a) in qubits.iter().enumerate() {
        for &b in &qubits[i + 1..] {
            let ra = netlist.qubit(a).rect_at(legalized.qubit(a));
            let rb = netlist.qubit(b).rect_at(legalized.qubit(b));
            min_gap = min_gap.min(ra.gap(&rb));
        }
    }
    assert!(
        min_gap >= spacing - 1e-6,
        "minimum qubit gap {min_gap:.2} µm below the {spacing:.2} µm requirement"
    );
}

#[test]
fn fidelity_pipeline_produces_sane_numbers() {
    let staged = flow(StandardTopology::Grid, LegalizationStrategy::Qgdp, true);
    let dp = staged.detailed.as_ref().expect("DP ran");
    let noise = NoiseModel::default();
    let f_small = dp.mean_benchmark_fidelity(Benchmark::Bv4, 5, &noise, 42);
    let f_large = dp.mean_benchmark_fidelity(Benchmark::Bv16, 5, &noise, 42);
    assert!(f_small > 0.0 && f_small <= 1.0);
    assert!(f_large > 0.0 && f_large <= 1.0);
    assert!(
        f_large < f_small,
        "bv-16 ({f_large:.4}) should have lower fidelity than bv-4 ({f_small:.4})"
    );
}

#[test]
fn stage_events_are_recorded_in_pipeline_order() {
    let staged = flow(StandardTopology::Falcon, LegalizationStrategy::Qgdp, true);
    let dp = staged.detailed.as_ref().expect("DP ran");
    let events = dp.events();
    let stages: Vec<Stage> = events.iter().map(|e| e.stage).collect();
    assert_eq!(
        stages,
        vec![
            Stage::GlobalPlacement,
            Stage::QubitLegalization,
            Stage::ResonatorLegalization,
            Stage::DetailedPlacement,
        ]
    );
    for event in &events {
        assert!(
            event.duration.as_nanos() > 0,
            "{} took zero time",
            event.stage
        );
    }
    // The legacy aggregate view is a projection of the events.
    let timing = dp.timing();
    assert_eq!(timing.global_placement, staged.gp.elapsed());
    assert_eq!(
        timing.qubit_legalization,
        staged.legalized.qubit_stage().elapsed()
    );
    assert_eq!(timing.resonator_legalization, staged.legalized.elapsed());
    assert_eq!(timing.detailed_placement, Some(dp.elapsed()));
}

#[test]
fn chain_net_model_also_flows_end_to_end() {
    let topo = StandardTopology::Grid.build();
    let session = Session::new(
        &topo,
        FlowConfig::default()
            .with_seed(77)
            .with_net_model(NetModel::Chain),
    )
    .expect("chain-model session builds");
    let artifact = session
        .run(LegalizationStrategy::Qgdp)
        .expect("chain-model flow succeeds");
    assert!(artifact.is_legal());
}
