//! End-to-end integration tests of the qGDP flow across crates: topology generation,
//! netlist construction, global placement, both legalization stages, detailed
//! placement and metric evaluation all exercised together.

use qgdp::prelude::*;

fn flow(topology: StandardTopology, strategy: LegalizationStrategy, dp: bool) -> FlowResult {
    let topo = topology.build();
    run_flow(
        &topo,
        strategy,
        &FlowConfig::default()
            .with_seed(2024)
            .with_detailed_placement(dp),
    )
    .expect("flow succeeds")
}

#[test]
fn qgdp_flow_is_legal_on_every_standard_topology() {
    for topology in StandardTopology::all() {
        let result = flow(topology, LegalizationStrategy::Qgdp, false);
        assert!(
            result.is_legal(),
            "{topology:?}: qGDP-LG produced an illegal layout"
        );
        assert_eq!(result.netlist.num_qubits(), topology.num_qubits());
    }
}

#[test]
fn gp_layout_is_illegal_but_legalization_fixes_it() {
    let result = flow(StandardTopology::Falcon, LegalizationStrategy::Qgdp, false);
    // The GP layout is expected to contain overlaps (that is the point of legalizing).
    let gp_overlaps = result.gp_placement.count_overlaps(&result.netlist);
    let lg_overlaps = result.legalized.count_overlaps(&result.netlist);
    assert!(gp_overlaps > 0, "GP should leave overlaps for LG to fix");
    assert_eq!(lg_overlaps, 0, "legalization must remove every overlap");
}

#[test]
fn legalization_preserves_gp_structure() {
    // Legalization should displace components, not scramble them: the total
    // displacement per component must stay well below the die diagonal.
    let result = flow(StandardTopology::Grid, LegalizationStrategy::Qgdp, false);
    let per_component = result
        .legalized
        .total_displacement_from(&result.gp_placement)
        / result.netlist.num_components() as f64;
    let diagonal = (result.die.width().powi(2) + result.die.height().powi(2)).sqrt();
    assert!(
        per_component < diagonal * 0.25,
        "average displacement {per_component:.1} µm vs die diagonal {diagonal:.1} µm"
    );
}

#[test]
fn detailed_placement_only_improves_the_layout() {
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Xtree,
        StandardTopology::Aspen11,
    ] {
        let result = flow(topology, LegalizationStrategy::Qgdp, true);
        let lg = &result.legalized_report;
        let dp = result.detailed_report.as_ref().expect("DP ran");
        assert!(result.is_legal(), "{topology:?}: DP output illegal");
        assert!(
            dp.total_clusters <= lg.total_clusters,
            "{topology:?}: DP increased cluster count"
        );
        assert!(
            dp.unified_resonators >= lg.unified_resonators,
            "{topology:?}: DP reduced I_edge"
        );
        assert!(
            dp.hotspot_proportion_percent <= lg.hotspot_proportion_percent + 1e-9,
            "{topology:?}: DP increased P_h"
        );
        assert!(
            dp.hotspot_qubits <= lg.hotspot_qubits,
            "{topology:?}: DP increased H_Q"
        );
    }
}

#[test]
fn detailed_placement_never_moves_qubits() {
    let result = flow(StandardTopology::Aspen11, LegalizationStrategy::Qgdp, true);
    let dp = result.detailed.as_ref().expect("DP ran");
    for q in result.netlist.qubit_ids() {
        assert_eq!(dp.qubit(q), result.legalized.qubit(q));
    }
}

#[test]
fn quantum_qubit_legalizer_enforces_min_spacing_on_real_gp() {
    let result = flow(StandardTopology::Grid, LegalizationStrategy::Qgdp, false);
    let netlist = &result.netlist;
    let spacing = netlist.geometry().min_qubit_spacing();
    let mut min_gap = f64::INFINITY;
    let qubits: Vec<QubitId> = netlist.qubit_ids().collect();
    for (i, &a) in qubits.iter().enumerate() {
        for &b in &qubits[i + 1..] {
            let ra = netlist.qubit(a).rect_at(result.legalized.qubit(a));
            let rb = netlist.qubit(b).rect_at(result.legalized.qubit(b));
            min_gap = min_gap.min(ra.gap(&rb));
        }
    }
    assert!(
        min_gap >= spacing - 1e-6,
        "minimum qubit gap {min_gap:.2} µm below the {spacing:.2} µm requirement"
    );
}

#[test]
fn fidelity_pipeline_produces_sane_numbers() {
    let result = flow(StandardTopology::Grid, LegalizationStrategy::Qgdp, true);
    let noise = NoiseModel::default();
    let f_small = result.mean_benchmark_fidelity(Benchmark::Bv4, 5, &noise, 42);
    let f_large = result.mean_benchmark_fidelity(Benchmark::Bv16, 5, &noise, 42);
    assert!(f_small > 0.0 && f_small <= 1.0);
    assert!(f_large > 0.0 && f_large <= 1.0);
    assert!(
        f_large < f_small,
        "bv-16 ({f_large:.4}) should have lower fidelity than bv-4 ({f_small:.4})"
    );
}

#[test]
fn stage_timings_are_recorded() {
    let result = flow(StandardTopology::Falcon, LegalizationStrategy::Qgdp, true);
    assert!(result.timing.global_placement.as_nanos() > 0);
    assert!(result.timing.qubit_legalization.as_nanos() > 0);
    assert!(result.timing.resonator_legalization.as_nanos() > 0);
    assert!(result.timing.detailed_placement.is_some());
}

#[test]
fn chain_net_model_also_flows_end_to_end() {
    let topo = StandardTopology::Grid.build();
    let result = run_flow(
        &topo,
        LegalizationStrategy::Qgdp,
        &FlowConfig::default()
            .with_seed(77)
            .with_net_model(NetModel::Chain),
    )
    .expect("chain-model flow succeeds");
    assert!(result.is_legal());
}
