//! Qualitative "shape" checks against the paper's headline results.
//!
//! Absolute numbers differ (our substrate is a simulator, not the authors' testbed),
//! but the orderings the paper reports must hold: Table I sizes, the qGDP ≥ hybrids ≥
//! classical fidelity ordering of Fig. 8, the P_h ordering of Fig. 9, and the DP
//! improvements of Table III.

use qgdp::prelude::*;

#[test]
fn table1_topology_inventory_matches() {
    let expected: &[(StandardTopology, usize, usize)] = &[
        (StandardTopology::Grid, 25, 40),
        (StandardTopology::Falcon, 27, 28),
        (StandardTopology::Eagle, 127, 144),
        (StandardTopology::Aspen11, 40, 48),
        (StandardTopology::AspenM, 80, 106),
        (StandardTopology::Xtree, 53, 52),
    ];
    for &(t, qubits, couplers) in expected {
        let topo = t.build();
        assert_eq!(topo.num_qubits(), qubits, "{t} qubit count");
        assert_eq!(topo.num_couplings(), couplers, "{t} coupler count");
    }
}

#[test]
fn table1_benchmark_inventory_matches() {
    let expected: &[(Benchmark, usize)] = &[
        (Benchmark::Bv4, 4),
        (Benchmark::Bv9, 9),
        (Benchmark::Bv16, 16),
        (Benchmark::Qaoa4, 4),
        (Benchmark::Ising4, 4),
        (Benchmark::Qgan4, 4),
        (Benchmark::Qgan9, 9),
    ];
    for &(b, n) in expected {
        assert_eq!(b.num_qubits(), n, "{b} qubit count");
        assert!(
            b.circuit().two_qubit_gate_count() > 0,
            "{b} has no 2q gates"
        );
    }
}

#[test]
fn table3_cell_counts_match_the_paper_scale() {
    // Table III reports 490 / 660 / 354 / 1801 / 598 / 1310 cells; with the default
    // geometry (12 blocks per resonator) we land on the same scale: within 25 %.
    let expected: &[(StandardTopology, usize)] = &[
        (StandardTopology::Grid, 490),
        (StandardTopology::Xtree, 660),
        (StandardTopology::Falcon, 354),
        (StandardTopology::Eagle, 1801),
        (StandardTopology::Aspen11, 598),
        (StandardTopology::AspenM, 1310),
    ];
    for &(t, cells) in expected {
        let netlist = t
            .build()
            .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
            .unwrap();
        let ours = netlist.num_components();
        let ratio = ours as f64 / cells as f64;
        assert!(
            (0.75..=1.25).contains(&ratio),
            "{t}: {ours} cells vs paper's {cells} (ratio {ratio:.2})"
        );
    }
}

/// Runs the flow and returns (LG report, DP report, fidelity of qaoa-4).
fn evaluate(
    topology: StandardTopology,
    strategy: LegalizationStrategy,
) -> (LayoutReport, Option<LayoutReport>, f64) {
    let topo = topology.build();
    let result = run_flow(
        &topo,
        strategy,
        &FlowConfig::default()
            .with_seed(31)
            .with_detailed_placement(strategy == LegalizationStrategy::Qgdp),
    )
    .expect("flow succeeds");
    let fidelity = result.mean_benchmark_fidelity(Benchmark::Qaoa4, 10, &NoiseModel::default(), 5);
    (
        result.legalized_report.clone(),
        result.detailed_report.clone(),
        fidelity,
    )
}

#[test]
fn fig8_shape_qgdp_beats_classical_legalizers() {
    // The headline claim: qGDP-LG improves fidelity over classical Abacus/Tetris.
    for topology in [StandardTopology::Grid, StandardTopology::Xtree] {
        let (_, _, f_qgdp) = evaluate(topology, LegalizationStrategy::Qgdp);
        let (_, _, f_tetris) = evaluate(topology, LegalizationStrategy::Tetris);
        let (_, _, f_abacus) = evaluate(topology, LegalizationStrategy::Abacus);
        assert!(
            f_qgdp >= f_tetris && f_qgdp >= f_abacus,
            "{topology:?}: qGDP {f_qgdp:.4} vs Tetris {f_tetris:.4} / Abacus {f_abacus:.4}"
        );
    }
}

#[test]
fn fig9_shape_qgdp_has_lowest_hotspot_proportion() {
    for topology in [StandardTopology::Grid, StandardTopology::Aspen11] {
        let (qgdp, _, _) = evaluate(topology, LegalizationStrategy::Qgdp);
        let (tetris, _, _) = evaluate(topology, LegalizationStrategy::Tetris);
        let (abacus, _, _) = evaluate(topology, LegalizationStrategy::Abacus);
        assert!(
            qgdp.hotspot_proportion_percent <= tetris.hotspot_proportion_percent + 1e-9,
            "{topology:?}: P_h qGDP {:.3}% vs Tetris {:.3}%",
            qgdp.hotspot_proportion_percent,
            tetris.hotspot_proportion_percent
        );
        assert!(
            qgdp.hotspot_proportion_percent <= abacus.hotspot_proportion_percent + 1e-9,
            "{topology:?}: P_h qGDP {:.3}% vs Abacus {:.3}%",
            qgdp.hotspot_proportion_percent,
            abacus.hotspot_proportion_percent
        );
    }
}

#[test]
fn fig9_shape_hybrids_fragment_resonators_more_than_qgdp() {
    // Q-Tetris / Q-Abacus fix the qubit stage but still scatter wire blocks, so their
    // cluster counts (and hence crossing risk) stay above qGDP-LG's.
    let (qgdp, _, _) = evaluate(StandardTopology::Grid, LegalizationStrategy::Qgdp);
    let (q_tetris, _, _) = evaluate(StandardTopology::Grid, LegalizationStrategy::QTetris);
    let (q_abacus, _, _) = evaluate(StandardTopology::Grid, LegalizationStrategy::QAbacus);
    assert!(qgdp.total_clusters <= q_tetris.total_clusters);
    assert!(qgdp.total_clusters <= q_abacus.total_clusters);
    assert!(qgdp.unified_resonators >= q_tetris.unified_resonators);
}

#[test]
fn table3_shape_dp_improves_every_reported_metric() {
    for topology in [StandardTopology::Grid, StandardTopology::Xtree] {
        let (lg, dp, _) = evaluate(topology, LegalizationStrategy::Qgdp);
        let dp = dp.expect("DP ran for qGDP");
        assert!(
            dp.unified_resonators >= lg.unified_resonators,
            "{topology:?} I_edge"
        );
        assert!(dp.crossings <= lg.crossings, "{topology:?} X");
        assert!(
            dp.hotspot_proportion_percent <= lg.hotspot_proportion_percent + 1e-9,
            "{topology:?} P_h"
        );
        assert!(dp.hotspot_qubits <= lg.hotspot_qubits, "{topology:?} H_Q");
    }
}

#[test]
fn larger_devices_have_lower_fidelity_for_the_same_benchmark() {
    // Fig. 8's vertical structure: for a fixed legalizer and benchmark, bigger/denser
    // topologies (Eagle) score below small ones (Grid).
    let grid = {
        let topo = StandardTopology::Grid.build();
        let r = run_flow(
            &topo,
            LegalizationStrategy::Qgdp,
            &FlowConfig::default().with_seed(8),
        )
        .unwrap();
        r.mean_benchmark_fidelity(Benchmark::Bv9, 8, &NoiseModel::default(), 3)
    };
    let eagle = {
        let topo = StandardTopology::Eagle.build();
        let r = run_flow(
            &topo,
            LegalizationStrategy::Qgdp,
            &FlowConfig::default().with_seed(8),
        )
        .unwrap();
        r.mean_benchmark_fidelity(Benchmark::Bv9, 8, &NoiseModel::default(), 3)
    };
    assert!(
        eagle <= grid + 1e-9,
        "bv-9 fidelity on Eagle ({eagle:.4}) should not exceed Grid ({grid:.4})"
    );
}
