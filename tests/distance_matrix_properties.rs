//! Property-based tests for the cached all-pairs [`DistanceMatrix`] on [`Topology`].
//!
//! The mapping hot path trusts the lazily-cached matrix completely (it never
//! re-runs BFS), so these properties pin down everything a distance table must
//! satisfy: agreement with an independent BFS written from scratch in this file,
//! agreement with an explicit cache-bypassing recomputation, symmetry, a zero
//! diagonal, the triangle inequality, and the single-edge distance of every coupling.
//! Both connected (spanning tree + chords) and deliberately disconnected graphs are
//! drawn.

use proptest::prelude::*;
use qgdp::prelude::*;
use qgdp::topology::TopologyKind;
use std::collections::VecDeque;

/// A random connected coupling graph over `n` qubits: a binary-tree spanning tree plus
/// a few extra chords (the same shape the flow-level property suite draws).
fn random_connected_device(n: usize, extra_edges: &[(usize, usize)]) -> Topology {
    let mut couplings: Vec<(usize, usize)> = (1..n).map(|i| (i, i / 2)).collect();
    for &(a, b) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a != b
            && !couplings.contains(&(a.min(b), a.max(b)))
            && !couplings.contains(&(a.max(b), a.min(b)))
        {
            couplings.push((a.min(b), a.max(b)));
        }
    }
    build_device(n, couplings)
}

/// Two disjoint connected halves: qubits `0..split` and `split..n`, no bridge.
fn random_disconnected_device(n: usize, split: usize) -> Topology {
    let mut couplings: Vec<(usize, usize)> = (1..split).map(|i| (i, i - 1)).collect();
    couplings.extend((split + 1..n).map(|i| (i, i - 1)));
    build_device(n, couplings)
}

fn build_device(n: usize, couplings: Vec<(usize, usize)>) -> Topology {
    let coords = (0..n)
        .map(|i| Point::new((i % 4) as f64, (i / 4) as f64))
        .collect();
    Topology::new(
        format!("random-{n}"),
        TopologyKind::Custom,
        n,
        couplings,
        coords,
    )
}

/// An independent BFS oracle, deliberately *not* sharing code with the library
/// implementation: nested `Vec<Vec<Option<u32>>>`, adjacency rebuilt from the raw
/// coupling list.
fn bfs_oracle(topo: &Topology) -> Vec<Vec<Option<u32>>> {
    let n = topo.num_qubits();
    let mut adj = vec![Vec::new(); n];
    for &(a, b) in topo.couplings() {
        adj[a].push(b);
        adj[b].push(a);
    }
    (0..n)
        .map(|start| {
            let mut row = vec![None; n];
            row[start] = Some(0u32);
            let mut queue = VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if row[v].is_none() {
                        row[v] = Some(row[u].unwrap() + 1);
                        queue.push_back(v);
                    }
                }
            }
            row
        })
        .collect()
}

/// Asserts every invariant a hop-distance matrix must satisfy for `topo`.
fn assert_matrix_invariants(topo: &Topology) -> Result<(), TestCaseError> {
    let n = topo.num_qubits();
    let cached = topo.distance_matrix();
    let oracle = bfs_oracle(topo);

    prop_assert_eq!(cached.dim(), n);
    // The cache equals a from-scratch recomputation and the independent oracle.
    prop_assert_eq!(cached, &topo.compute_distance_matrix());
    for (a, oracle_row) in oracle.iter().enumerate() {
        for (b, &cell) in oracle_row.iter().enumerate() {
            let expected = cell.unwrap_or(DistanceMatrix::UNREACHABLE);
            prop_assert_eq!(cached.get(a, b), expected);
            // Symmetry (the coupling graph is undirected).
            prop_assert_eq!(cached.get(a, b), cached.get(b, a));
            prop_assert_eq!(cached.is_reachable(a, b), cell.is_some());
        }
        // Zero diagonal, full rows.
        prop_assert_eq!(cached.get(a, a), 0);
        prop_assert_eq!(cached.row(a).len(), n);
    }
    // Triangle inequality over every reachable triple (saturating: an unreachable leg
    // gives an infinite bound, which never constrains).
    for a in 0..n {
        for b in 0..n {
            for c in 0..n {
                let ab = cached.get(a, b) as u64;
                let ac = cached.get(a, c) as u64;
                let cb = cached.get(c, b) as u64;
                prop_assert!(
                    ab <= ac.saturating_add(cb),
                    "d({a},{b})={ab} > d({a},{c})={ac} + d({c},{b})={cb}"
                );
            }
        }
    }
    // Every coupling is a distance-1 pair.
    for &(a, b) in topo.couplings() {
        prop_assert_eq!(cached.get(a, b), 1);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_matrix_matches_fresh_bfs_on_connected_graphs(
        n in 2usize..12,
        extra in proptest::collection::vec((0usize..12, 0usize..12), 0..6),
    ) {
        let topo = random_connected_device(n, &extra);
        prop_assert!(topo.is_connected());
        assert_matrix_invariants(&topo)?;
        // On a connected graph every pair is reachable and the diameter is finite.
        let d = topo.distance_matrix();
        for a in 0..n {
            for b in 0..n {
                prop_assert!(d.is_reachable(a, b));
            }
        }
        prop_assert!(d.diameter().unwrap_or(0) < n as u32);
    }

    #[test]
    fn cached_matrix_matches_fresh_bfs_on_disconnected_graphs(
        n in 4usize..12,
        split_frac in 0.2f64..0.8,
    ) {
        let split = ((n as f64 * split_frac) as usize).clamp(1, n - 1);
        let topo = random_disconnected_device(n, split);
        prop_assert!(!topo.is_connected());
        assert_matrix_invariants(&topo)?;
        // Cross-component pairs are unreachable in both directions.
        let d = topo.distance_matrix();
        prop_assert_eq!(d.get(0, split), DistanceMatrix::UNREACHABLE);
        prop_assert_eq!(d.get(split, 0), DistanceMatrix::UNREACHABLE);
    }

    #[test]
    fn standard_topologies_satisfy_matrix_invariants(which in 0usize..6) {
        let topo = StandardTopology::all()[which].build();
        assert_matrix_invariants(&topo)?;
    }
}
