//! Property-based integration tests over randomly generated device netlists.
//!
//! The standard-topology tests exercise the six fixed devices of the paper; these
//! properties instead draw random connected coupling graphs and random global
//! placements and assert the invariants every stage of the flow must uphold:
//! legalizers always emit legal layouts (or a clean error), qubit positions are never
//! touched by the cell stages, cluster analysis partitions the segment set, and the
//! detailed placer never regresses its guarded metrics.

use proptest::prelude::*;
use qgdp::prelude::*;
use qgdp::{DetailedPlacer, QuantumQubitLegalizer, ResonatorLegalizer};
use qgdp_legalize::{is_legal, CellLegalizer as _, QubitLegalizer as _};

/// A random connected coupling graph over `n` qubits: a random spanning tree plus a few
/// extra chords.
fn random_device(n: usize, extra_edges: &[(usize, usize)]) -> Topology {
    let mut couplings: Vec<(usize, usize)> = (1..n).map(|i| (i, i / 2)).collect(); // binary-tree spanning tree
    for &(a, b) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a != b
            && !couplings.contains(&(a.min(b), a.max(b)))
            && !couplings.contains(&(a, b))
            && !couplings.contains(&(b, a))
        {
            couplings.push((a.min(b), a.max(b)));
        }
    }
    let coords = (0..n)
        .map(|i| qgdp::geometry::Point::new((i % 4) as f64, (i / 4) as f64))
        .collect();
    Topology::new(
        format!("random-{n}"),
        qgdp::topology::TopologyKind::Custom,
        n,
        couplings,
        coords,
    )
}

/// Builds a netlist plus a seeded random (illegal) placement inside a generous die.
fn random_instance(
    n: usize,
    extra_edges: &[(usize, usize)],
    positions: &[(f64, f64)],
) -> (QuantumNetlist, Rect, Placement) {
    let device = random_device(n, extra_edges);
    let netlist = device
        .to_netlist(ComponentGeometry::default(), NetModel::Pseudo)
        .expect("netlist builds");
    let die = netlist.suggested_die(0.35);
    let mut placement = Placement::new(&netlist);
    for (k, id) in netlist.component_ids().enumerate() {
        let (fx, fy) = positions[k % positions.len()];
        placement.set_component(
            id,
            Point::new(
                die.left() + fx * die.width(),
                die.bottom() + fy * die.height(),
            ),
        );
    }
    placement.clamp_within(&netlist, &die);
    (netlist, die, placement)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn qgdp_legalization_is_always_legal(
        n in 3usize..8,
        extra in proptest::collection::vec((0usize..8, 0usize..8), 0..4),
        positions in proptest::collection::vec((0.05f64..0.95, 0.05f64..0.95), 8..40),
    ) {
        let (netlist, die, gp) = random_instance(n, &extra, &positions);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &die, &gp)
            .expect("qubit legalization succeeds on a 35%-utilised die");
        let legal = ResonatorLegalizer::new()
            .legalize_cells(&netlist, &die, &qubits)
            .expect("resonator legalization succeeds");
        prop_assert!(is_legal(&netlist, &die, &legal));
        // Qubit positions from the qubit stage are preserved by the cell stage.
        for q in netlist.qubit_ids() {
            prop_assert_eq!(legal.qubit(q), qubits.qubit(q));
        }
    }

    #[test]
    fn classical_baselines_are_legal_but_may_fragment(
        n in 3usize..7,
        extra in proptest::collection::vec((0usize..7, 0usize..7), 0..3),
        positions in proptest::collection::vec((0.05f64..0.95, 0.05f64..0.95), 8..40),
    ) {
        let (netlist, die, gp) = random_instance(n, &extra, &positions);
        let qubits = MacroLegalizer::new()
            .legalize_qubits(&netlist, &die, &gp)
            .expect("macro legalization succeeds");
        for legalizer in [
            Box::new(TetrisLegalizer::new()) as Box<dyn qgdp::legalize::CellLegalizer>,
            Box::new(AbacusLegalizer::new()) as Box<dyn qgdp::legalize::CellLegalizer>,
        ] {
            let legal = legalizer
                .legalize_cells(&netlist, &die, &qubits)
                .expect("cell legalization succeeds");
            prop_assert!(is_legal(&netlist, &die, &legal), "{} illegal", legalizer.name());
            // Cluster analysis always partitions the segment set, fragmented or not.
            let report = ClusterReport::analyze(&netlist, &legal);
            prop_assert_eq!(report.total_resonators(), netlist.num_resonators());
            prop_assert!(report.total_clusters() >= netlist.num_resonators());
            prop_assert!(report.total_clusters() <= netlist.num_segments());
        }
    }

    #[test]
    fn detailed_placement_never_regresses_on_random_instances(
        n in 3usize..7,
        extra in proptest::collection::vec((0usize..7, 0usize..7), 0..3),
        positions in proptest::collection::vec((0.05f64..0.95, 0.05f64..0.95), 8..40),
    ) {
        let (netlist, die, gp) = random_instance(n, &extra, &positions);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &die, &gp)
            .expect("qubit legalization succeeds");
        let legal = ResonatorLegalizer::new()
            .legalize_cells(&netlist, &die, &qubits)
            .expect("resonator legalization succeeds");
        let crosstalk = CrosstalkConfig::default();
        let before = LayoutReport::evaluate(&netlist, &legal, &crosstalk);
        let outcome = DetailedPlacer::new().place(&netlist, &die, &legal);
        let after = LayoutReport::evaluate(&netlist, &outcome.placement, &crosstalk);
        prop_assert!(is_legal(&netlist, &die, &outcome.placement));
        prop_assert!(after.total_clusters <= before.total_clusters);
        prop_assert!(after.hotspot_proportion_percent <= before.hotspot_proportion_percent + 1e-9);
        prop_assert!(outcome.windows_accepted <= outcome.windows_processed);
        for q in netlist.qubit_ids() {
            prop_assert_eq!(outcome.placement.qubit(q), legal.qubit(q));
        }
    }

    #[test]
    fn fidelity_is_always_a_probability_on_random_instances(
        n in 4usize..7,
        extra in proptest::collection::vec((0usize..7, 0usize..7), 0..3),
        positions in proptest::collection::vec((0.05f64..0.95, 0.05f64..0.95), 8..40),
        seed in 0u64..1_000,
    ) {
        let (netlist, die, gp) = random_instance(n, &extra, &positions);
        let device = random_device(n, &extra);
        let qubits = QuantumQubitLegalizer::new()
            .legalize_qubits(&netlist, &die, &gp)
            .expect("qubit legalization succeeds");
        let legal = ResonatorLegalizer::new()
            .legalize_cells(&netlist, &die, &qubits)
            .expect("resonator legalization succeeds");
        let circuit = qgdp::circuits::benchmarks::qaoa_ring(n.min(4), 1);
        let mapped = map_circuit(&circuit, &device, seed);
        let report = estimate_fidelity(
            &netlist,
            &legal,
            &mapped,
            &NoiseModel::default(),
            &CrosstalkConfig::default(),
        );
        prop_assert!(report.fidelity > 0.0 && report.fidelity <= 1.0);
        prop_assert!(report.gate_fidelity <= 1.0);
        prop_assert!(report.decoherence_fidelity <= 1.0);
        prop_assert!(report.qubit_crosstalk_fidelity <= 1.0);
        prop_assert!(report.resonator_crosstalk_fidelity <= 1.0);
    }
}
