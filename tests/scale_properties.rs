//! Property-based tests for the roadmap-scale device generators and the tiered
//! distance provider.
//!
//! Three families of claims are pinned down:
//!
//! 1. The parameterized heavy-hex generator matches its closed-form
//!    qubit/coupler counts ([`heavy_hex_counts`]) on every `(long_rows,
//!    row_len)` shape, stays connected, and never stacks two qubits on the
//!    same canonical coordinate — the properties `roadmap_heavy_hex` relies on
//!    when it inverts the count formula to hit a target size.
//! 2. The multi-chip composer matches [`multi_chip_counts`], remains connected
//!    through its inter-chip coupler nets, and keeps coordinates distinct
//!    across tiles for any chip it is handed.
//! 3. The lazy per-source BFS distance tier is **bit-identical** to the dense
//!    matrix on the paper topologies and on random connected *and*
//!    disconnected graphs, including under an LRU small enough to force
//!    evictions on every walk.  This is the contract that lets
//!    `QGDP_DISTANCE_MODE` change memory behaviour without ever changing a
//!    mapped circuit.

use proptest::prelude::*;
use qgdp::prelude::*;
use qgdp::topology::{
    heavy_hex_counts, heavy_hex_rows, multi_chip, multi_chip_counts, roadmap_heavy_hex, Distances,
    TopologyKind,
};
use std::collections::HashSet;
use std::sync::Arc;

fn build_device(n: usize, couplings: Vec<(usize, usize)>) -> Topology {
    let coords = (0..n)
        .map(|i| Point::new((i % 4) as f64, (i / 4) as f64))
        .collect();
    Topology::new(
        format!("random-{n}"),
        TopologyKind::Custom,
        n,
        couplings,
        coords,
    )
}

/// A random connected coupling graph: binary-tree spanning tree plus chords.
fn random_connected_device(n: usize, extra_edges: &[(usize, usize)]) -> Topology {
    let mut couplings: Vec<(usize, usize)> = (1..n).map(|i| (i, i / 2)).collect();
    for &(a, b) in extra_edges {
        let (a, b) = (a % n, b % n);
        if a != b
            && !couplings.contains(&(a.min(b), a.max(b)))
            && !couplings.contains(&(a.max(b), a.min(b)))
        {
            couplings.push((a.min(b), a.max(b)));
        }
    }
    build_device(n, couplings)
}

/// Two disjoint connected halves with no bridge.
fn random_disconnected_device(n: usize, split: usize) -> Topology {
    let mut couplings: Vec<(usize, usize)> = (1..split).map(|i| (i, i - 1)).collect();
    couplings.extend((split + 1..n).map(|i| (i, i - 1)));
    build_device(n, couplings)
}

/// Coordinates must be pairwise distinct (placement seeds collapse otherwise).
fn assert_coords_distinct(topo: &Topology) -> Result<(), TestCaseError> {
    let mut seen = HashSet::new();
    for p in topo.coords() {
        prop_assert!(
            seen.insert((p.x.to_bits(), p.y.to_bits())),
            "{}: duplicate canonical coordinate ({}, {})",
            topo.name(),
            p.x,
            p.y
        );
    }
    Ok(())
}

/// Every distance the lazy tier serves must equal the dense matrix bit for bit,
/// row-wise and point-wise, whatever the LRU capacity.
fn assert_tiers_identical(topo: &Topology, lru_rows: usize) -> Result<(), TestCaseError> {
    let n = topo.num_qubits();
    let dense = Distances::dense(Arc::new(topo.compute_distance_matrix()));
    let lazy = Distances::lazy(topo.adjacency().to_vec(), lru_rows);
    prop_assert_eq!(dense.dim(), n);
    prop_assert_eq!(lazy.dim(), n);
    for a in 0..n {
        prop_assert_eq!(&*lazy.row(a), &*dense.row(a));
        for b in 0..n {
            prop_assert_eq!(lazy.get(a, b), dense.get(a, b));
            prop_assert_eq!(lazy.is_reachable(a, b), dense.is_reachable(a, b));
        }
    }
    // A second interleaved pass exercises LRU hits and re-computation after
    // eviction: values must not depend on the cache's history.
    for a in (0..n).rev() {
        prop_assert_eq!(&*lazy.row(a), &*dense.row(a));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn heavy_hex_shapes_match_their_closed_form(
        long_rows in 2usize..10,
        row_len in 4usize..24,
    ) {
        let (qubits, couplers) = heavy_hex_counts(long_rows, row_len);
        let topo = heavy_hex_rows(long_rows, row_len);
        prop_assert_eq!(topo.num_qubits(), qubits);
        prop_assert_eq!(topo.couplings().len(), couplers);
        prop_assert!(topo.is_connected(), "{} is disconnected", topo.name());
        assert_coords_distinct(&topo)?;
    }

    #[test]
    fn roadmap_generator_reaches_its_target(target in 100usize..3000) {
        let topo = roadmap_heavy_hex(target);
        prop_assert!(
            topo.num_qubits() >= target,
            "{}: {} qubits misses the {} target",
            topo.name(), topo.num_qubits(), target
        );
        // The inversion may overshoot by at most one long row's worth.
        prop_assert!(
            topo.num_qubits() < target + target / 10 + 64,
            "{}: {} qubits overshoots the {} target",
            topo.name(), topo.num_qubits(), target
        );
        prop_assert!(topo.is_connected());
        assert_coords_distinct(&topo)?;
    }

    #[test]
    fn multi_chip_modules_match_their_closed_form(
        rows in 1usize..4,
        cols in 1usize..4,
        links in 1usize..6,
        chip_rows in 2usize..5,
        chip_len in 4usize..10,
    ) {
        let chip = heavy_hex_rows(chip_rows, chip_len);
        let module = multi_chip(&chip, rows, cols, links, 3.0);
        let (qubits, couplers) = multi_chip_counts(
            chip.num_qubits(),
            chip.couplings().len(),
            rows,
            cols,
            links,
        );
        prop_assert_eq!(module.num_qubits(), qubits);
        prop_assert_eq!(module.couplings().len(), couplers);
        prop_assert_eq!(module.kind(), TopologyKind::MultiChip);
        prop_assert!(module.is_connected(), "{} is disconnected", module.name());
        assert_coords_distinct(&module)?;
    }

    #[test]
    fn lazy_tier_is_bit_identical_on_random_connected_graphs(
        n in 2usize..14,
        extra in proptest::collection::vec((0usize..14, 0usize..14), 0..6),
        lru in 1usize..5,
    ) {
        let topo = random_connected_device(n, &extra);
        assert_tiers_identical(&topo, lru)?;
    }

    #[test]
    fn lazy_tier_is_bit_identical_on_random_disconnected_graphs(
        n in 4usize..14,
        split_frac in 0.2f64..0.8,
        lru in 1usize..5,
    ) {
        let split = ((n as f64 * split_frac) as usize).clamp(1, n - 1);
        let topo = random_disconnected_device(n, split);
        prop_assert!(!topo.is_connected());
        assert_tiers_identical(&topo, lru)?;
    }

    #[test]
    fn lazy_tier_is_bit_identical_on_paper_topologies(
        which in 0usize..3,
        lru in 1usize..4,
    ) {
        let topo = [
            StandardTopology::Grid,
            StandardTopology::Falcon,
            StandardTopology::Eagle,
        ][which]
            .build();
        assert_tiers_identical(&topo, lru)?;
    }
}

/// The three vendor-roadmap milestones, built once each (not proptest cases —
/// the 100k build is a second-scale operation).
#[test]
fn roadmap_milestones_build_connected_at_scale() {
    for target in [1_000, 10_000, 100_000] {
        let topo = roadmap_heavy_hex(target);
        assert!(topo.num_qubits() >= target, "{}", topo.name());
        assert!(topo.is_connected(), "{}", topo.name());
    }
}
