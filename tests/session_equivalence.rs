//! Golden staged-vs-monolithic equivalence suite.
//!
//! The staged [`Session`] API must be a pure refactoring of the monolithic
//! `run_flow`: every artifact the staged pipeline produces — placements, reports,
//! fidelities — must be **bit-identical** to what `run_flow` returns for the same
//! inputs, whether the stages are forked from one shared [`GlobalPlacement`]
//! artifact or recomputed per strategy, and whether the batch surface runs on one
//! worker or many.

use qgdp::prelude::*;

/// The GP seed shared by every experiment (`qgdp_bench::EXPERIMENT_SEED`).
const EXPERIMENT_SEED: u64 = 20_250_331;

fn config() -> FlowConfig {
    FlowConfig::default().with_seed(EXPERIMENT_SEED)
}

#[test]
fn staged_artifacts_are_bit_identical_to_run_flow_for_all_strategies() {
    // One shared GP artifact per topology feeds all five strategies; every staged
    // output must equal the five independent monolithic flows bit for bit.
    for topology in [
        StandardTopology::Grid,
        StandardTopology::Falcon,
        StandardTopology::Eagle,
    ] {
        let topo = topology.build();
        let session = Session::new(&topo, config()).expect("session builds");
        let gp = session.global_place();
        for strategy in LegalizationStrategy::all() {
            let staged = gp
                .legalize(strategy)
                .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
            let mono = run_flow(&topo, strategy, &config())
                .unwrap_or_else(|e| panic!("{strategy} failed on {topology}: {e}"));
            assert_eq!(
                gp.placement(),
                &mono.gp_placement,
                "{topology}/{strategy}: GP positions diverged"
            );
            assert_eq!(
                staged.qubit_stage().placement(),
                &mono.qubit_legalized,
                "{topology}/{strategy}: qubit-LG positions diverged"
            );
            assert_eq!(
                staged.placement(),
                &mono.legalized,
                "{topology}/{strategy}: legalized positions diverged"
            );
            assert_eq!(
                gp.report(),
                &mono.gp_report,
                "{topology}/{strategy}: GP report diverged"
            );
            assert_eq!(
                staged.report(),
                &mono.legalized_report,
                "{topology}/{strategy}: legalized report diverged"
            );
            assert_eq!(
                staged.die(),
                mono.die,
                "{topology}/{strategy}: die diverged"
            );
        }
    }
}

#[test]
fn staged_detailed_placement_is_bit_identical_to_run_flow() {
    for topology in [StandardTopology::Grid, StandardTopology::Aspen11] {
        let topo = topology.build();
        let cfg = config().with_detailed_placement(true);
        let staged = Session::new(&topo, cfg)
            .expect("session builds")
            .run(LegalizationStrategy::Qgdp)
            .expect("staged flow succeeds");
        let dp = staged.detailed().expect("DP ran");
        let mono = run_flow(&topo, LegalizationStrategy::Qgdp, &cfg).expect("run_flow succeeds");
        assert_eq!(
            dp.placement(),
            mono.detailed.as_ref().expect("DP ran"),
            "{topology}: DP positions diverged"
        );
        assert_eq!(
            dp.report(),
            mono.detailed_report.as_ref().expect("DP ran"),
            "{topology}: DP report diverged"
        );
        // The shim conversion round-trips the same bits.
        let converted = staged.into_flow_result();
        assert_eq!(converted.detailed, mono.detailed, "{topology}");
        assert_eq!(converted.legalized, mono.legalized, "{topology}");
        assert_eq!(
            converted.detailed_report, mono.detailed_report,
            "{topology}"
        );
    }
}

#[test]
fn one_forked_gp_equals_five_independent_flows() {
    // Fork-reuse: five legalizations off ONE GlobalPlacement artifact must equal
    // five fully independent sessions each running their own GP.
    let topo = StandardTopology::Grid.build();
    let shared_gp = Session::new(&topo, config())
        .expect("session builds")
        .global_place();
    for strategy in LegalizationStrategy::all() {
        let forked = shared_gp.legalize(strategy).expect("forked legalization");
        let independent = Session::new(&topo, config())
            .expect("session builds")
            .global_place()
            .legalize(strategy)
            .expect("independent legalization");
        assert_eq!(
            forked.placement(),
            independent.placement(),
            "{strategy}: forked and independent layouts diverged"
        );
        assert_eq!(
            forked.report(),
            independent.report(),
            "{strategy}: forked and independent reports diverged"
        );
    }
}

#[test]
fn batch_surface_is_bit_identical_to_serial_staging() {
    let topo = StandardTopology::Falcon.build();
    let session = Session::new(&topo, config()).expect("session builds");
    let requests: Vec<FlowRequest> = LegalizationStrategy::all()
        .into_iter()
        .flat_map(|s| {
            [
                FlowRequest::legalize(s),
                FlowRequest::detailed(s, DetailedPlacerConfig::new()),
            ]
        })
        .collect();

    // Serial reference: drive the stages by hand off one GP.
    let gp = session.global_place();
    let serial: Vec<(Placement, LayoutReport)> = requests
        .iter()
        .map(|req| {
            let cell = gp.legalize(req.strategy).expect("legalization succeeds");
            match req.detail {
                None => (cell.placement().clone(), cell.report().clone()),
                Some(cfg) => {
                    let dp = cell.detail_with(cfg);
                    (dp.placement().clone(), dp.report().clone())
                }
            }
        })
        .collect();

    for threads in [1, 3, 8] {
        let batched = session
            .run_batch_with_threads(&requests, threads)
            .expect("batch succeeds");
        assert_eq!(batched.len(), requests.len());
        for ((req, artifact), (placement, report)) in requests.iter().zip(&batched).zip(&serial) {
            assert_eq!(
                artifact.final_placement(),
                placement,
                "{}/detail={:?}/threads={threads}: batched placement diverged",
                req.strategy,
                req.detail.is_some()
            );
            assert_eq!(
                artifact.report(),
                report,
                "{}/detail={:?}/threads={threads}: batched report diverged",
                req.strategy,
                req.detail.is_some()
            );
        }
    }
}

#[test]
fn all_or_nothing_shims_are_golden_over_the_try_surface() {
    // `run_batch` / `run_matrix` are thin shims over `try_run_batch` /
    // `try_run_matrix`: on all-success inputs they must return exactly the
    // artifacts of the fault-isolated surface, in the same order.
    let topo = StandardTopology::Falcon.build();
    let session = Session::new(&topo, config()).expect("session builds");
    let requests: Vec<FlowRequest> = LegalizationStrategy::all()
        .into_iter()
        .flat_map(|s| {
            [
                FlowRequest::legalize(s),
                FlowRequest::detailed(s, DetailedPlacerConfig::new()),
            ]
        })
        .collect();
    for threads in [1, 3, 8] {
        let shim = session
            .run_batch_with_threads(&requests, threads)
            .expect("all-success batch");
        let tried = session.try_run_batch_with_threads(&requests, threads);
        assert_eq!(shim.len(), tried.len());
        for (index, (a, b)) in shim.iter().zip(&tried).enumerate() {
            let b = b.as_ref().expect("all-success try surface");
            assert_eq!(
                a.final_placement(),
                b.final_placement(),
                "request {index}/threads={threads}: shim diverged from try surface"
            );
            assert_eq!(a.report(), b.report(), "request {index}/threads={threads}");
        }
    }

    let strategies = LegalizationStrategy::all();
    let details = [None, Some(DetailedPlacerConfig::new())];
    let matrix = session.run_matrix(&strategies, &details).expect("matrix");
    let tried = session.try_run_matrix(&strategies, &details);
    for (cell, (a, b)) in matrix.iter().zip(&tried).enumerate() {
        let b = b.as_ref().expect("all-success try matrix");
        assert_eq!(a.final_placement(), b.final_placement(), "cell {cell}");
    }
}

#[test]
fn shim_error_is_the_first_failing_strategy_in_request_appearance_order() {
    // Contract (see the `run_batch` docs): the all-or-nothing shims surface the
    // error of the first failing strategy in request *first-appearance* order —
    // NOT the first failing request index, and NOT `LegalizationStrategy::all()`
    // order.  Over-pack the die so several strategies fail organically, then
    // order the requests to make the three candidate orders distinguishable.
    let geometry = ComponentGeometry {
        qubit_width: 80.0,
        qubit_height: 80.0,
        ..ComponentGeometry::new()
    };
    let cfg = FlowConfig::default()
        .with_seed(7)
        .with_geometry(geometry)
        .with_gp(GlobalPlacerConfig::default().with_utilization(0.9));
    let topo = StandardTopology::Grid.build();
    let session = Session::new(&topo, cfg).expect("session builds");

    let outcomes = session.try_run_batch(
        &LegalizationStrategy::all()
            .into_iter()
            .map(FlowRequest::legalize)
            .collect::<Vec<_>>(),
    );
    let failing: Vec<LegalizationStrategy> = LegalizationStrategy::all()
        .into_iter()
        .zip(&outcomes)
        .filter(|(_, o)| o.is_err())
        .map(|(s, _)| s)
        .collect();
    let surviving: Vec<LegalizationStrategy> = LegalizationStrategy::all()
        .into_iter()
        .zip(&outcomes)
        .filter(|(_, o)| o.is_ok())
        .map(|(s, _)| s)
        .collect();
    assert!(
        failing.len() >= 2 && !surviving.is_empty(),
        "need >=2 organic failures and a survivor to pin the order \
         (failing: {failing:?}, surviving: {surviving:?})"
    );

    // Put a survivor first, then the failing strategies in *reverse* canonical
    // order: appearance order now disagrees with both index order within
    // `all()` and the canonical strategy order.
    let mut requests = vec![FlowRequest::legalize(surviving[0])];
    requests.extend(failing.iter().rev().map(|&s| FlowRequest::legalize(s)));
    let expected = *failing.last().expect("non-empty");

    for threads in [1, 3, 8] {
        let error = session
            .run_batch_with_threads(&requests, threads)
            .expect_err("a failing strategy must fail the shim batch");
        assert_eq!(
            error.strategy(),
            Some(expected),
            "threads={threads}: the shim must surface the first failing strategy \
             in request appearance order"
        );
        assert_eq!(error.request(), Some(1), "threads={threads}");
    }
}

#[test]
fn artifact_fidelity_matches_flow_result_fidelity_bits() {
    let topo = StandardTopology::Grid.build();
    let staged = Session::new(&topo, config())
        .expect("session builds")
        .global_place()
        .legalize(LegalizationStrategy::Qgdp)
        .expect("legalization succeeds");
    let mono = run_flow(&topo, LegalizationStrategy::Qgdp, &config()).expect("run_flow succeeds");
    let noise = NoiseModel::default();
    for (benchmark, mappings, seed) in [(Benchmark::Bv4, 8, 7u64), (Benchmark::Qaoa4, 5, 99)] {
        let a = staged.mean_benchmark_fidelity(benchmark, mappings, &noise, seed);
        let b = mono.mean_benchmark_fidelity(benchmark, mappings, &noise, seed);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{benchmark:?}: staged {a:.17} vs monolithic {b:.17}"
        );
    }
}

#[test]
fn matrix_artifacts_share_one_gp_and_netlist_allocation() {
    // The redesign's point: the strategy matrix shares earlier stages instead of
    // recomputing them.  Assert the sharing structurally (same allocations), not
    // just value equality.
    let topo = StandardTopology::Grid.build();
    let session = Session::new(&topo, config()).expect("session builds");
    let artifacts = session
        .run_matrix(&LegalizationStrategy::all(), &[None])
        .expect("matrix succeeds");
    let first = artifacts[0].legalized().global();
    for artifact in &artifacts[1..] {
        assert!(
            std::ptr::eq(artifact.legalized().global().placement(), first.placement()),
            "matrix artifacts must share the GP placement allocation"
        );
        assert!(
            std::ptr::eq(artifact.netlist(), session.netlist()),
            "matrix artifacts must share the session netlist allocation"
        );
    }
}
