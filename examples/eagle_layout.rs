//! Legalize the 127-qubit IBM Eagle-scale heavy-hex device — the paper's largest
//! topology — and render a coarse ASCII picture of the resulting floor plan.
//!
//! ```bash
//! cargo run --release -p qgdp --example eagle_layout
//! ```

use qgdp::prelude::*;

/// Renders the layout as an ASCII grid: `Q` = qubit, `#` = wire block, `.` = empty.
fn render(result: &FlowResult, cols: usize) -> String {
    let die = result.die;
    let rows = (cols as f64 * die.height() / die.width()).round().max(1.0) as usize;
    let mut canvas = vec![vec!['.'; cols]; rows];
    let plot = |canvas: &mut Vec<Vec<char>>, p: Point, ch: char| {
        let c = ((p.x - die.left()) / die.width() * cols as f64).floor() as i64;
        let r = ((p.y - die.bottom()) / die.height() * rows as f64).floor() as i64;
        let c = c.clamp(0, cols as i64 - 1) as usize;
        let r = r.clamp(0, rows as i64 - 1) as usize;
        // Qubits win over wire blocks when both map to the same character cell.
        if canvas[r][c] != 'Q' {
            canvas[r][c] = ch;
        }
    };
    let placement = result.final_placement();
    for s in result.netlist.segment_ids() {
        plot(&mut canvas, placement.segment(s), '#');
    }
    for q in result.netlist.qubit_ids() {
        plot(&mut canvas, placement.qubit(q), 'Q');
    }
    canvas
        .into_iter()
        .rev() // y grows upward; print top row first
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() -> Result<(), FlowError> {
    let topology = StandardTopology::Eagle.build();
    println!("device: {topology}");

    let result = run_flow(
        &topology,
        LegalizationStrategy::Qgdp,
        &FlowConfig::default()
            .with_seed(2025)
            .with_detailed_placement(true),
    )?;

    println!(
        "die {:.0} x {:.0} µm, {} cells, legal: {}",
        result.die.width(),
        result.die.height(),
        result.netlist.num_components(),
        result.is_legal()
    );
    let report = result.final_report();
    println!(
        "I_edge {}   crossings {}   P_h {:.3} %   H_Q {}",
        report.integration_ratio(),
        report.crossings,
        report.hotspot_proportion_percent,
        report.hotspot_qubits
    );
    println!(
        "runtime: qubit LG {:.2} ms, resonator LG {:.2} ms",
        result.timing.qubit_legalization.as_secs_f64() * 1e3,
        result.timing.resonator_legalization.as_secs_f64() * 1e3,
    );
    println!();
    println!("{}", render(&result, 96));
    Ok(())
}
