//! Legalize the 127-qubit IBM Eagle-scale heavy-hex device — the paper's largest
//! topology — and render a coarse ASCII picture of the resulting floor plan.
//!
//! ```bash
//! cargo run --release -p qgdp --example eagle_layout
//! ```

use qgdp::prelude::*;

/// Renders the layout as an ASCII grid: `Q` = qubit, `#` = wire block, `.` = empty.
fn render(netlist: &QuantumNetlist, die: Rect, placement: &Placement, cols: usize) -> String {
    let rows = (cols as f64 * die.height() / die.width()).round().max(1.0) as usize;
    let mut canvas = vec![vec!['.'; cols]; rows];
    let plot = |canvas: &mut Vec<Vec<char>>, p: Point, ch: char| {
        let c = ((p.x - die.left()) / die.width() * cols as f64).floor() as i64;
        let r = ((p.y - die.bottom()) / die.height() * rows as f64).floor() as i64;
        let c = c.clamp(0, cols as i64 - 1) as usize;
        let r = r.clamp(0, rows as i64 - 1) as usize;
        // Qubits win over wire blocks when both map to the same character cell.
        if canvas[r][c] != 'Q' {
            canvas[r][c] = ch;
        }
    };
    for s in netlist.segment_ids() {
        plot(&mut canvas, placement.segment(s), '#');
    }
    for q in netlist.qubit_ids() {
        plot(&mut canvas, placement.qubit(q), 'Q');
    }
    canvas
        .into_iter()
        .rev() // y grows upward; print top row first
        .map(|row| row.into_iter().collect::<String>())
        .collect::<Vec<_>>()
        .join("\n")
}

fn main() -> Result<(), FlowError> {
    let topology = StandardTopology::Eagle.build();
    println!("device: {topology}");

    let session = Session::new(&topology, FlowConfig::default().with_seed(2025))?;
    let legalized = session
        .global_place()
        .legalize(LegalizationStrategy::Qgdp)?;
    let detailed = legalized.detail();

    println!(
        "die {:.0} x {:.0} µm, {} cells, legal: {}",
        detailed.die().width(),
        detailed.die().height(),
        session.netlist().num_components(),
        detailed.is_legal()
    );
    let report = detailed.report();
    println!(
        "I_edge {}   crossings {}   P_h {:.3} %   H_Q {}",
        report.integration_ratio(),
        report.crossings,
        report.hotspot_proportion_percent,
        report.hotspot_qubits
    );
    println!(
        "runtime: qubit LG {:.2} ms, resonator LG {:.2} ms",
        legalized.qubit_stage().elapsed().as_secs_f64() * 1e3,
        legalized.elapsed().as_secs_f64() * 1e3,
    );
    println!();
    println!(
        "{}",
        render(session.netlist(), detailed.die(), detailed.placement(), 96)
    );
    Ok(())
}
