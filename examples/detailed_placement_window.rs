//! Demonstrate the detailed-placement stage (Algorithm 2) in isolation: legalize a
//! device, then show how the window-based maze rerouting unifies the remaining
//! fragmented resonators and removes frequency hotspots.
//!
//! The staged API makes this natural: the pipeline stops at the [`CellLegalized`]
//! artifact, which is inspected and then forked into a detailed placement.
//!
//! ```bash
//! cargo run --release -p qgdp --example detailed_placement_window
//! ```

use qgdp::prelude::*;

fn main() -> Result<(), FlowError> {
    let topology = StandardTopology::AspenM.build();
    println!("device: {topology}");

    // Legalize only (no DP yet) so we can inspect the intermediate artifact.
    let session = Session::new(&topology, FlowConfig::default().with_seed(9))?;
    let legalized = session
        .global_place()
        .legalize(LegalizationStrategy::Qgdp)?;
    let netlist = session.netlist();

    let before = legalized.report();
    println!();
    println!("after qGDP-LG : {before}");

    // List the problem resonators the detailed placer will attack.
    let clusters = ClusterReport::analyze(netlist, legalized.placement());
    let fragmented = clusters.non_unified();
    println!(
        "fragmented resonators: {} of {}",
        fragmented.len(),
        clusters.total_resonators()
    );
    for r in fragmented.iter().take(8) {
        let res = netlist.resonator(*r);
        let (a, b) = res.endpoints();
        println!(
            "  {r}: couples {a} and {b}, {} wire blocks",
            res.num_segments()
        );
    }
    if fragmented.len() > 8 {
        println!("  ... and {} more", fragmented.len() - 8);
    }

    // Fork the legalized artifact into a detailed placement and compare.
    let detailed = legalized.detail();
    let after = detailed.report();
    println!();
    println!(
        "windows processed: {}, accepted: {}",
        detailed.windows_processed(),
        detailed.windows_accepted()
    );
    println!("after qGDP-DP : {after}");
    println!();
    println!(
        "improvement   : I_edge {} -> {}, X {} -> {}, P_h {:.3}% -> {:.3}%, H_Q {} -> {}",
        before.integration_ratio(),
        after.integration_ratio(),
        before.crossings,
        after.crossings,
        before.hotspot_proportion_percent,
        after.hotspot_proportion_percent,
        before.hotspot_qubits,
        after.hotspot_qubits,
    );
    Ok(())
}
