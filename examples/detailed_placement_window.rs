//! Demonstrate the detailed-placement stage (Algorithm 2) in isolation: legalize a
//! device, then show how the window-based maze rerouting unifies the remaining
//! fragmented resonators and removes frequency hotspots.
//!
//! ```bash
//! cargo run --release -p qgdp --example detailed_placement_window
//! ```

use qgdp::prelude::*;
use qgdp::DetailedPlacer;

fn main() -> Result<(), FlowError> {
    let topology = StandardTopology::AspenM.build();
    println!("device: {topology}");

    // Legalize only (no DP) so we can drive the detailed placer by hand.
    let result = run_flow(
        &topology,
        LegalizationStrategy::Qgdp,
        &FlowConfig::default().with_seed(9),
    )?;
    let netlist = &result.netlist;
    let crosstalk = CrosstalkConfig::default();

    let before = LayoutReport::evaluate(netlist, &result.legalized, &crosstalk);
    println!();
    println!("after qGDP-LG : {before}");

    // List the problem resonators the detailed placer will attack.
    let clusters = ClusterReport::analyze(netlist, &result.legalized);
    let fragmented = clusters.non_unified();
    println!(
        "fragmented resonators: {} of {}",
        fragmented.len(),
        clusters.total_resonators()
    );
    for r in fragmented.iter().take(8) {
        let res = netlist.resonator(*r);
        let (a, b) = res.endpoints();
        println!(
            "  {r}: couples {a} and {b}, {} wire blocks",
            res.num_segments()
        );
    }
    if fragmented.len() > 8 {
        println!("  ... and {} more", fragmented.len() - 8);
    }

    // Run the detailed placer and compare.
    let outcome = DetailedPlacer::new().place(netlist, &result.die, &result.legalized);
    let after = LayoutReport::evaluate(netlist, &outcome.placement, &crosstalk);
    println!();
    println!(
        "windows processed: {}, accepted: {}",
        outcome.windows_processed, outcome.windows_accepted
    );
    println!("after qGDP-DP : {after}");
    println!();
    println!(
        "improvement   : I_edge {} -> {}, X {} -> {}, P_h {:.3}% -> {:.3}%, H_Q {} -> {}",
        before.integration_ratio(),
        after.integration_ratio(),
        before.crossings,
        after.crossings,
        before.hotspot_proportion_percent,
        after.hotspot_proportion_percent,
        before.hotspot_qubits,
        after.hotspot_qubits,
    );
    Ok(())
}
