//! Compare the five legalization strategies of the paper (qGDP-LG, Q-Abacus, Q-Tetris,
//! Abacus, Tetris) on one topology: the miniature version of Figs. 8 and 9.
//!
//! All five strategies are batched through [`Session::run_matrix`], so the global
//! placement runs exactly once and its artifact is forked per strategy — the
//! paper's "same GP positions" protocol, structurally guaranteed.
//!
//! Pass a topology name (`grid`, `xtree`, `falcon`, `eagle`, `aspen-11`, `aspen-m`) as
//! the first argument; the default is `falcon`.
//!
//! ```bash
//! cargo run --release -p qgdp --example strategy_comparison -- aspen-11
//! ```

use qgdp::prelude::*;

fn parse_topology(name: &str) -> StandardTopology {
    match name.to_ascii_lowercase().as_str() {
        "grid" => StandardTopology::Grid,
        "xtree" => StandardTopology::Xtree,
        "falcon" => StandardTopology::Falcon,
        "eagle" => StandardTopology::Eagle,
        "aspen-11" | "aspen11" => StandardTopology::Aspen11,
        "aspen-m" | "aspenm" => StandardTopology::AspenM,
        other => {
            eprintln!("unknown topology `{other}`, using falcon");
            StandardTopology::Falcon
        }
    }
}

fn main() -> Result<(), FlowError> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "falcon".into());
    let topology = parse_topology(&name).build();
    let session = Session::new(&topology, FlowConfig::default().with_seed(1234))?;
    println!("device: {topology}");
    println!();

    let noise = NoiseModel::default();
    let benchmarks = [Benchmark::Bv4, Benchmark::Qaoa4, Benchmark::Qgan4];
    let mappings = 15;

    println!(
        "{:<10} | {:>8} | {:>3} | {:>7} | {:>4} | {:>8} | {:>8} | {:>8}",
        "strategy", "I_edge", "X", "P_h (%)", "H_Q", "bv-4", "qaoa-4", "qgan-4"
    );
    println!("{}", "-".repeat(80));
    // One GP run feeds all five strategies, fanned over the QGDP_THREADS pool.
    let artifacts = session.run_matrix(&LegalizationStrategy::all(), &[None])?;
    for artifact in &artifacts {
        let report = artifact.report();
        let fidelities: Vec<f64> = benchmarks
            .iter()
            .map(|&b| artifact.mean_benchmark_fidelity(b, mappings, &noise, 7))
            .collect();
        println!(
            "{:<10} | {:>8} | {:>3} | {:>7.3} | {:>4} | {:>8.4} | {:>8.4} | {:>8.4}",
            artifact.strategy().name(),
            report.integration_ratio(),
            report.crossings,
            report.hotspot_proportion_percent,
            report.hotspot_qubits,
            fidelities[0],
            fidelities[1],
            fidelities[2],
        );
    }
    println!();
    println!("(higher fidelity and I_edge are better; lower X, P_h and H_Q are better — the");
    println!(" same conventions as Figs. 8–9 of the paper)");
    Ok(())
}
