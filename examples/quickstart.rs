//! Quickstart: run the full qGDP flow on the 25-qubit grid device and print the layout
//! quality before and after each stage.
//!
//! ```bash
//! cargo run --release -p qgdp --example quickstart
//! ```

use qgdp::prelude::*;

fn main() -> Result<(), FlowError> {
    // 1. Pick a device topology (Table I of the paper) and build its quantum netlist.
    let topology = StandardTopology::Grid.build();
    println!("device   : {topology}");

    // 2. Run the full flow: global placement -> qubit legalization -> integration-aware
    //    resonator legalization -> detailed placement.
    let config = FlowConfig::default()
        .with_seed(42)
        .with_detailed_placement(true);
    let result = run_flow(&topology, LegalizationStrategy::Qgdp, &config)?;

    println!(
        "die      : {:.0} x {:.0} µm",
        result.die.width(),
        result.die.height()
    );
    println!("cells    : {}", result.netlist.num_components());
    println!();
    println!("stage            | I_edge  |  X | P_h (%) | H_Q");
    println!("-----------------+---------+----+---------+----");
    let row = |name: &str, report: &LayoutReport| {
        println!(
            "{name:<17}| {:>7} | {:>2} | {:>7.3} | {:>3}",
            report.integration_ratio(),
            report.crossings,
            report.hotspot_proportion_percent,
            report.hotspot_qubits
        );
    };
    row("global placement", &result.gp_report);
    row("qGDP-LG", &result.legalized_report);
    if let Some(dp) = &result.detailed_report {
        row("qGDP-DP", dp);
    }

    // 3. Estimate the program fidelity of a NISQ benchmark on the final layout,
    //    averaged over random qubit mappings (the Fig. 8 protocol).
    let noise = NoiseModel::default();
    println!();
    println!("benchmark fidelity on the final layout (20 mappings each):");
    for benchmark in [Benchmark::Bv4, Benchmark::Qaoa4, Benchmark::Qgan4] {
        let f = result.mean_benchmark_fidelity(benchmark, 20, &noise, 7);
        println!("  {:<8} {f:.4}", benchmark.name());
    }

    // 4. Stage runtimes (the quantities of Table II).
    println!();
    println!(
        "runtime: GP {:.1} ms, qubit LG {:.3} ms, resonator LG {:.3} ms, DP {:.3} ms",
        result.timing.global_placement.as_secs_f64() * 1e3,
        result.timing.qubit_legalization.as_secs_f64() * 1e3,
        result.timing.resonator_legalization.as_secs_f64() * 1e3,
        result
            .timing
            .detailed_placement
            .map_or(0.0, |d| d.as_secs_f64() * 1e3)
    );
    Ok(())
}
