//! Quickstart: run the staged qGDP pipeline on the 25-qubit grid device and print
//! the layout quality after each stage.
//!
//! The [`Session`] API replaces the old monolithic `run_flow` call: a session
//! builds the netlist once, `global_place()` produces a forkable GP artifact, and
//! each later stage is a typed artifact with lazy, cached reports.  (`run_flow`
//! still works and returns the same bits — it is now a thin shim over this API.)
//!
//! ```bash
//! cargo run --release -p qgdp --example quickstart
//! ```

use qgdp::prelude::*;

fn main() -> Result<(), FlowError> {
    // 1. Pick a device topology (Table I of the paper) and open a session: the
    //    quantum netlist is built once here and shared by every stage artifact.
    let topology = StandardTopology::Grid.build();
    let session = Session::new(&topology, FlowConfig::default().with_seed(42))?;
    println!("device   : {topology}");

    // 2. Drive the staged pipeline: global placement -> qubit legalization ->
    //    integration-aware resonator legalization -> detailed placement.  Each step
    //    returns an immutable artifact; earlier artifacts stay usable (and can be
    //    forked into other strategies or configs without recomputing).
    let gp = session.global_place();
    let legalized = gp.legalize(LegalizationStrategy::Qgdp)?;
    let detailed = legalized.detail();

    println!(
        "die      : {:.0} x {:.0} µm",
        gp.die().width(),
        gp.die().height()
    );
    println!("cells    : {}", session.netlist().num_components());
    println!();
    println!("stage            | I_edge  |  X | P_h (%) | H_Q");
    println!("-----------------+---------+----+---------+----");
    let row = |name: &str, report: &LayoutReport| {
        println!(
            "{name:<17}| {:>7} | {:>2} | {:>7.3} | {:>3}",
            report.integration_ratio(),
            report.crossings,
            report.hotspot_proportion_percent,
            report.hotspot_qubits
        );
    };
    // Reports are computed lazily on first call and cached inside the artifact.
    row("global placement", gp.report());
    row("qGDP-LG", legalized.report());
    row("qGDP-DP", detailed.report());

    // 3. Estimate the program fidelity of a NISQ benchmark on the final layout,
    //    averaged over random qubit mappings (the Fig. 8 protocol).
    let noise = NoiseModel::default();
    println!();
    println!("benchmark fidelity on the final layout (20 mappings each):");
    for benchmark in [Benchmark::Bv4, Benchmark::Qaoa4, Benchmark::Qgan4] {
        let f = detailed.mean_benchmark_fidelity(benchmark, 20, &noise, 7);
        println!("  {:<8} {f:.4}", benchmark.name());
    }

    // 4. Stage runtimes (the quantities of Table II), from the artifact's trace.
    println!();
    let runtime: Vec<String> = detailed
        .events()
        .iter()
        .map(|e| format!("{} {:.3} ms", e.stage, e.duration.as_secs_f64() * 1e3))
        .collect();
    println!("runtime: {}", runtime.join(", "));
    Ok(())
}
