//! The staged `Session` API end to end: one global placement feeding the whole
//! five-strategy legalization matrix, plus one legalized artifact forked into
//! several detailed-placer configurations — without recomputing any earlier stage.
//!
//! This is the miniature version of what `bench_flow` measures: the Table II/III
//! strategy matrix used to cost five full `run_flow` calls (five netlist builds,
//! five identical global placements); with a session it costs one of each.
//!
//! ```bash
//! cargo run --release -p qgdp --example session_matrix
//! ```

use qgdp::prelude::*;

fn main() -> Result<(), FlowError> {
    let topology = StandardTopology::Falcon.build();
    let session = Session::new(&topology, FlowConfig::default().with_seed(7))?;
    println!("device: {topology}");

    // One GP artifact...
    let gp = session.global_place();
    println!(
        "global placement: {:.2} ms, HPWL {:.0} (runs once for the whole matrix)",
        gp.elapsed().as_secs_f64() * 1e3,
        gp.stats().hpwl
    );

    // ...forked into all five strategies.  `run_matrix` does the same fan-out over
    // the QGDP_THREADS worker pool; the explicit loop shows the artifact flow.
    println!();
    println!(
        "{:<10} | {:>8} | {:>8} | {:>8} | {:>8}",
        "strategy", "tq (ms)", "te (ms)", "I_edge", "clusters"
    );
    println!("{}", "-".repeat(56));
    for strategy in LegalizationStrategy::all() {
        let legalized = gp.legalize(strategy)?;
        let report = legalized.report();
        println!(
            "{:<10} | {:>8.3} | {:>8.3} | {:>8} | {:>8}",
            strategy.name(),
            legalized.qubit_stage().elapsed().as_secs_f64() * 1e3,
            legalized.elapsed().as_secs_f64() * 1e3,
            report.integration_ratio(),
            report.total_clusters,
        );
    }

    // One legalized artifact forked into multiple detailed-placer configurations:
    // the legalization stages are not re-run either.
    let legalized = gp.legalize(LegalizationStrategy::Qgdp)?;
    println!();
    println!("qGDP-LG artifact forked into detailed-placement configs:");
    for (label, passes) in [("1 pass", 1), ("2 passes (default)", 2), ("4 passes", 4)] {
        let mut config = DetailedPlacerConfig::new();
        config.passes = passes;
        let dp = legalized.detail_with(config);
        println!(
            "  {label:<18}: {:.2} ms, windows {}/{}, clusters {} -> {}",
            dp.elapsed().as_secs_f64() * 1e3,
            dp.windows_accepted(),
            dp.windows_processed(),
            legalized.report().total_clusters,
            dp.report().total_clusters,
        );
    }

    // The batched surface produces the same artifacts in one call.
    let batched = session.run_matrix(
        &[LegalizationStrategy::Qgdp, LegalizationStrategy::Tetris],
        &[None, Some(DetailedPlacerConfig::new())],
    )?;
    println!();
    println!(
        "run_matrix(2 strategies x [LG, DP]) returned {} artifacts in request order",
        batched.len()
    );
    Ok(())
}
